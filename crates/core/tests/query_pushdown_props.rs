//! Differential property test for the query layer: **pushdown ≡
//! scan-plus-filter ≡ naive**, byte for byte.
//!
//! Random genealogies (the TasKy triple, an overlapping two-arm SPLIT, and
//! the FK-DECOMPOSE + stacked SPLIT minting chain) receive random write
//! sequences; interleaved random queries — filters (eq/range/conjunction),
//! projections, orderings, limits — are then executed three ways:
//!
//! 1. **pushdown** — `db.query(...)` through the plan layer (index probes,
//!    cold seeded evaluation, scans — whatever the planner picks);
//! 2. **scan + filter** — `db.scan(...)` followed by the engine-side
//!    [`Relation::filter`];
//! 3. **naive** — a hand-rolled Rust loop over the scanned rows evaluating
//!    the filter via [`Expr::matches`] on a [`NamedRow`], then sorting,
//!    limiting, and projecting.
//!
//! All three must agree exactly — row bytes, key order, counts — on a
//! **warm** database (snapshot reuse on) and a **cold** one (reuse off,
//! every statement re-resolves), whose results must also equal each other,
//! skolem registries included, at parallel widths {1, 2, 4, 8}. Queries run
//! *before* the oracle scan, so cold runs genuinely exercise the seeded
//! pushdown path rather than being served from the statement the oracle
//! warmed.

use inverda_core::Inverda;
use inverda_storage::{Expr, Key, NamedRow, Relation, Row, Value};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert {
        target: usize,
        vals: Vec<i64>,
    },
    Update {
        target: usize,
        slot: usize,
        vals: Vec<i64>,
    },
    Delete {
        target: usize,
        slot: usize,
    },
    Materialize {
        version: usize,
    },
    Query(QuerySpec),
}

/// A structurally random query, interpreted against whatever target it
/// lands on at runtime (column/value selectors wrap around the actual
/// schema and data).
#[derive(Debug, Clone)]
struct QuerySpec {
    /// Index into the flattened (version, table) list.
    target: usize,
    /// Filter shape: 0 = none, 1 = eq, 2 = range, 3 = eq AND range.
    shape: usize,
    /// Column selectors (wrap around arity).
    col_a: usize,
    col_b: usize,
    /// Value selectors (wrap around the distinct values present, +1 extra
    /// slot probing a value that is absent).
    val_a: usize,
    val_b: usize,
    /// Range operator selector: `>=`, `<`, `>`, `<=`.
    range_op: usize,
    /// Projection: bitmask over columns (0 = no projection).
    proj_mask: usize,
    /// Ordering: 0 = none, else column selector +1; descending if odd.
    order_sel: usize,
    /// Limit: 0 = none, else 1..=4.
    limit_sel: usize,
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (
        0usize..16,
        0usize..4,
        0usize..4,
        0usize..4,
        0usize..8,
        0usize..8,
        0usize..4,
        0usize..16,
        0usize..7,
        0usize..5,
    )
        .prop_map(
            |(
                target,
                shape,
                col_a,
                col_b,
                val_a,
                val_b,
                range_op,
                proj_mask,
                order_sel,
                limit_sel,
            )| {
                QuerySpec {
                    target,
                    shape,
                    col_a,
                    col_b,
                    val_a,
                    val_b,
                    range_op,
                    proj_mask,
                    order_sel,
                    limit_sel,
                }
            },
        )
}

fn op_strategy(n_targets: usize, n_versions: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_targets, prop::collection::vec(0i64..6, 4..5))
            .prop_map(|(target, vals)| Op::Insert { target, vals }),
        (0..n_targets, prop::collection::vec(0i64..6, 4..5))
            .prop_map(|(target, vals)| Op::Insert { target, vals }),
        (
            0..n_targets,
            0usize..12,
            prop::collection::vec(0i64..6, 4..5)
        )
            .prop_map(|(target, slot, vals)| Op::Update { target, slot, vals }),
        (0..n_targets, 0usize..12).prop_map(|(target, slot)| Op::Delete { target, slot }),
        (0..n_versions).prop_map(|version| Op::Materialize { version }),
        query_strategy().prop_map(Op::Query),
        query_strategy().prop_map(Op::Query),
        query_strategy().prop_map(Op::Query),
    ]
}

struct Harness {
    warm: Inverda,
    cold: Inverda,
    targets: Vec<(&'static str, &'static str)>,
    versions: Vec<&'static str>,
    keys: Vec<Key>,
}

impl Harness {
    fn new(
        script: &str,
        targets: Vec<(&'static str, &'static str)>,
        versions: Vec<&'static str>,
    ) -> Self {
        let warm = Inverda::new();
        warm.execute(script).expect("script");
        let cold = Inverda::new();
        cold.execute(script).expect("script");
        cold.set_snapshot_reuse(false);
        Harness {
            warm,
            cold,
            targets,
            versions,
            keys: Vec::new(),
        }
    }

    fn row(&self, target: usize, vals: &[i64]) -> Vec<Value> {
        let (_, table) = self.targets[target];
        match table {
            "Task" => vec![
                Value::text(format!("author{}", vals[0])),
                Value::text(format!("task{}", vals[1])),
                Value::Int(vals[2] % 3 + 1),
            ],
            "Todo" => vec![
                Value::text(format!("author{}", vals[0])),
                Value::text(format!("todo{}", vals[1])),
            ],
            "D" | "W" => vec![
                Value::Int(vals[0] % 5),
                Value::text(format!("b{}", vals[1])),
                Value::text(format!("c{}", vals[2] % 3)),
            ],
            _ => vec![Value::Int(vals[0]), Value::text(format!("b{}", vals[1]))],
        }
    }

    fn apply_write(&mut self, op: &Op) {
        match op {
            Op::Insert { target, vals } => {
                let (v, t) = self.targets[*target];
                let row = self.row(*target, vals);
                let rw = self.warm.insert(v, t, row.clone());
                let rc = self.cold.insert(v, t, row);
                match (rw, rc) {
                    (Ok(kw), Ok(kc)) => {
                        assert_eq!(kw, kc, "key sequences diverged");
                        self.keys.push(kw);
                    }
                    (rw, rc) => assert_eq!(rw.is_ok(), rc.is_ok(), "{rw:?} vs {rc:?}"),
                }
            }
            Op::Update { target, slot, vals } => {
                if self.keys.is_empty() {
                    return;
                }
                let key = self.keys[slot % self.keys.len()];
                let (v, t) = self.targets[*target];
                let row = self.row(*target, vals);
                let rw = self.warm.update(v, t, key, row.clone());
                let rc = self.cold.update(v, t, key, row);
                assert_eq!(rw.is_ok(), rc.is_ok(), "{rw:?} vs {rc:?}");
            }
            Op::Delete { target, slot } => {
                if self.keys.is_empty() {
                    return;
                }
                let key = self.keys[slot % self.keys.len()];
                let (v, t) = self.targets[*target];
                let rw = self.warm.delete(v, t, key);
                let rc = self.cold.delete(v, t, key);
                assert_eq!(rw.is_ok(), rc.is_ok(), "{rw:?} vs {rc:?}");
            }
            Op::Materialize { version } => {
                let v = self.versions[*version];
                let rw = self.warm.materialize(&[v.to_string()]);
                let rc = self.cold.materialize(&[v.to_string()]);
                assert_eq!(rw.is_ok(), rc.is_ok(), "{rw:?} vs {rc:?}");
            }
            Op::Query(_) => unreachable!("queries are checked, not applied"),
        }
    }

    /// Flattened, deterministic (version, table) enumeration — identical in
    /// both databases by construction.
    fn query_targets(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for v in self.warm.versions() {
            let mut tables = self.warm.tables_of(&v).unwrap();
            tables.sort();
            for t in tables {
                out.push((v.clone(), t));
            }
        }
        out
    }

    fn check_query(&self, spec: &QuerySpec, context: &str) {
        let targets = self.query_targets();
        let (version, table) = &targets[spec.target % targets.len()];
        for (name, db) in [("warm", &self.warm), ("cold", &self.cold)] {
            check_one(db, version, table, spec, &format!("{context} [{name}]"));
        }
        // Queries are reads: they must never make the two databases' skolem
        // registries drift (pushdown may not mint off the canonical order).
        assert_eq!(
            self.warm.debug_registry(),
            self.cold.debug_registry(),
            "registries diverged after {context}"
        );
    }
}

/// Interpret the spec against the live schema/data and run the three-way
/// comparison on one database.
fn check_one(db: &Inverda, version: &str, table: &str, spec: &QuerySpec, context: &str) {
    let columns = db.columns_of(version, table).unwrap();
    // Build the query FIRST (cold runs must take the pushdown path, not be
    // served by the oracle's scan)...
    let (filter, filter_display) = build_filter(db, version, table, &columns, spec);
    let mut q = db.query(version, table);
    if let Some(f) = &filter {
        q = q.filter(f.clone());
    }
    let proj: Option<Vec<String>> = projection(&columns, spec.proj_mask);
    if let Some(cols) = &proj {
        q = q.project(cols.clone());
    }
    let order: Option<(usize, bool)> = (spec.order_sel > 0).then(|| {
        let col = (spec.order_sel - 1) % columns.len();
        (col, spec.order_sel % 2 == 1)
    });
    if let Some((col, desc)) = order {
        q = if desc {
            q.order_by_desc(columns[col].clone())
        } else {
            q.order_by(columns[col].clone())
        };
    }
    let limit = (spec.limit_sel > 0).then_some(spec.limit_sel);
    if let Some(n) = limit {
        q = q.limit(n);
    }
    let pushed = q.rows().map(|it| it.collect::<Vec<(Key, Row)>>());
    let count = q.count();
    let exists = q.exists();

    // ...then the oracles.
    let scanned = db.scan(version, table);
    let (scanned, pushed) = match (scanned, pushed) {
        (Ok(s), Ok(p)) => (s, p),
        (s, p) => {
            assert_eq!(
                s.is_ok(),
                p.is_ok(),
                "{context}: scan {s:?} vs query {p:?} ({filter_display})"
            );
            return;
        }
    };
    // Oracle 2: scan + engine-side Relation::filter.
    let filtered: Arc<Relation> = match &filter {
        Some(f) => Arc::new(scanned.filter(|_, row| {
            f.matches(&NamedRow {
                columns: &columns,
                row,
            })
            .unwrap_or(false)
        })),
        None => Arc::clone(&scanned),
    };
    // Oracle 3: hand-rolled loop — order, limit, project.
    let mut naive: Vec<(Key, Row)> = filtered.iter().map(|(k, row)| (k, row.clone())).collect();
    if let Some((col, desc)) = order {
        naive.sort_by(|(ka, ra), (kb, rb)| {
            let ord = ra.get(col).cmp(&rb.get(col));
            let ord = if desc { ord.reverse() } else { ord };
            ord.then(ka.cmp(kb))
        });
    }
    if let Some(n) = limit {
        naive.truncate(n);
    }
    if let Some(cols) = &proj {
        let idxs: Vec<usize> = cols
            .iter()
            .map(|c| columns.iter().position(|x| x == c).unwrap())
            .collect();
        for (_, row) in naive.iter_mut() {
            *row = idxs.iter().map(|&i| row[i].clone()).collect();
        }
    }
    assert_eq!(
        pushed, naive,
        "{context}: pushdown != naive for {version}.{table} filter {filter_display} \
         proj {proj:?} order {order:?} limit {limit:?}"
    );
    assert_eq!(
        count.unwrap(),
        naive.len(),
        "{context}: count ({filter_display})"
    );
    assert_eq!(
        exists.unwrap(),
        !naive.is_empty(),
        "{context}: exists ({filter_display})"
    );
}

/// Pick filter columns/values from what is actually stored (wrapping the
/// selectors), with one extra value slot that is guaranteed absent.
fn build_filter(
    db: &Inverda,
    version: &str,
    table: &str,
    columns: &[String],
    spec: &QuerySpec,
) -> (Option<Expr>, String) {
    if spec.shape == 0 {
        return (None, "<none>".into());
    }
    let value_of = |col: usize, sel: usize| -> Value {
        let rel = match db.scan(version, table) {
            Ok(rel) => rel,
            Err(_) => return Value::Int(0),
        };
        let mut vals: Vec<Value> = rel.iter().map(|(_, row)| row[col].clone()).collect();
        vals.sort();
        vals.dedup();
        // One selector slot past the stored values probes a miss.
        if vals.is_empty() || sel % (vals.len() + 1) == vals.len() {
            Value::text("absent!")
        } else {
            vals[sel % (vals.len() + 1)].clone()
        }
    };
    let ca = spec.col_a % columns.len();
    let eq = Expr::col(columns[ca].clone()).eq(Expr::lit(value_of(ca, spec.val_a)));
    let cb = spec.col_b % columns.len();
    let vb = Expr::lit(value_of(cb, spec.val_b));
    let range = match spec.range_op {
        0 => Expr::col(columns[cb].clone()).ge(vb),
        1 => Expr::col(columns[cb].clone()).lt(vb),
        2 => Expr::col(columns[cb].clone()).gt(vb),
        _ => Expr::col(columns[cb].clone()).le(vb),
    };
    let expr = match spec.shape {
        1 => eq,
        2 => range,
        _ => eq.and(range),
    };
    let display = expr.to_string();
    (Some(expr), display)
}

fn projection(columns: &[String], mask: usize) -> Option<Vec<String>> {
    if mask == 0 {
        return None;
    }
    let picked: Vec<String> = columns
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << (i % 8)) != 0)
        .map(|(_, c)| c.clone())
        .collect();
    if picked.is_empty() {
        None
    } else {
        Some(picked)
    }
}

const TASKY_SCRIPT: &str =
    "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
     CREATE SCHEMA VERSION Do! FROM TasKy WITH \
       SPLIT TABLE Task INTO Todo WITH prio = 1; \
       DROP COLUMN prio FROM Todo DEFAULT 1; \
     CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
       DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
       RENAME COLUMN author IN Author TO name;";

const SPLIT_SCRIPT: &str = "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b); \
     CREATE SCHEMA VERSION V2 FROM V1 WITH \
       SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 3;";

const MINT_CHAIN_SCRIPT: &str = "CREATE SCHEMA VERSION V1 WITH CREATE TABLE D(a, b, c); \
     CREATE SCHEMA VERSION V2 FROM V1 WITH \
       DECOMPOSE TABLE D INTO D(a, b), U(c) ON FOREIGN KEY c; \
     CREATE SCHEMA VERSION V3 FROM V2 WITH \
       SPLIT TABLE D INTO W WITH a < 3;";

fn run(
    script: &str,
    targets: Vec<(&'static str, &'static str)>,
    versions: Vec<&'static str>,
    ops: &[Op],
) {
    let mut h = Harness::new(script, targets, versions);
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Query(spec) => h.check_query(spec, &format!("op {i}: {spec:?}")),
            write => h.apply_write(write),
        }
    }
}

proptest! {
    /// TasKy triple: SPLIT/DROP COLUMN pushdown chains plus the staged
    /// FK-DECOMPOSE branch (which must *fall back* to full resolution and
    /// still agree).
    #[test]
    fn query_pushdown_equals_scan_filter_tasky(
        ops in prop::collection::vec(op_strategy(2, 3), 1..18),
        tsel in 0usize..4,
    ) {
        inverda_core::set_threads(Some([1usize, 2, 4, 8][tsel]));
        run(
            TASKY_SCRIPT,
            vec![("TasKy", "Task"), ("Do!", "Todo")],
            vec!["TasKy", "Do!", "TasKy2"],
            &ops,
        );
    }

    /// Overlapping two-arm SPLIT: twins, separations, aux guards — the
    /// union-with-negation γ mappings the seeded path must reproduce.
    #[test]
    fn query_pushdown_equals_scan_filter_overlapping_split(
        ops in prop::collection::vec(op_strategy(3, 2), 1..18),
        tsel in 0usize..4,
    ) {
        inverda_core::set_threads(Some([1usize, 2, 4, 8][tsel]));
        run(
            SPLIT_SCRIPT,
            vec![("V1", "T"), ("V2", "R"), ("V2", "S")],
            vec!["V1", "V2"],
            &ops,
        );
    }

    /// FK-DECOMPOSE + stacked SPLIT minting chain: queries across the
    /// id-generating frontier must agree with scan+filter *and* leave the
    /// registries in lockstep (pushdown never mints off the canonical
    /// order).
    #[test]
    fn query_pushdown_equals_scan_filter_minting_chain(
        ops in prop::collection::vec(op_strategy(2, 3), 1..18),
        tsel in 0usize..4,
    ) {
        inverda_core::set_threads(Some([1usize, 2, 4, 8][tsel]));
        run(
            MINT_CHAIN_SCRIPT,
            vec![("V1", "D"), ("V3", "W")],
            vec!["V1", "V2", "V3"],
            &ops,
        );
    }
}
