//! Property-based verification of the paper's bidirectionality laws
//! (Section 5) — *semantic* counterpart to the syntactic proofs in
//! `inverda-bidel::verify`, and the only verification path for the
//! id-generating SMOs.
//!
//! For every SMO type we build a two-version database, generate random data
//! and random write sequences, and check:
//!
//! * round trips (26)/(27): the state visible in each version is identical
//!   under every valid materialization schema (migrating back and forth
//!   loses and gains nothing);
//! * write law (48)/(49): writes through either version are reflected
//!   exactly, wherever the data lives;
//! * delta propagation ≡ state recomputation (the generated-trigger path
//!   agrees with the view-recomputation oracle);
//! * chain law (50)/(51): the same holds across chains of SMOs.

use inverda_core::{Inverda, WritePath};
use inverda_storage::{Key, Value};
use proptest::prelude::*;

/// A randomly generated logical write.
#[derive(Debug, Clone)]
enum Op {
    InsertSrc { a: i64, b: i64 },
    InsertTgt { a: i64, b: i64 },
    UpdateSrc { slot: usize, a: i64, b: i64 },
    UpdateTgt { slot: usize, a: i64, b: i64 },
    DeleteSrc { slot: usize },
    DeleteTgt { slot: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..10, 0i64..10).prop_map(|(a, b)| Op::InsertSrc { a, b }),
        (0i64..10, 0i64..10).prop_map(|(a, b)| Op::InsertTgt { a, b }),
        (0usize..8, 0i64..10, 0i64..10).prop_map(|(slot, a, b)| Op::UpdateSrc { slot, a, b }),
        (0usize..8, 0i64..10, 0i64..10).prop_map(|(slot, a, b)| Op::UpdateTgt { slot, a, b }),
        (0usize..8).prop_map(|slot| Op::DeleteSrc { slot }),
        (0usize..8).prop_map(|slot| Op::DeleteTgt { slot }),
    ]
}

/// An SMO scenario: evolution script from V1{T(a,b)} to V2, plus the write
/// surfaces (version, table, row-builder) for both sides.
struct Scenario {
    name: &'static str,
    script: &'static str,
    /// (version, table) pairs to snapshot for state comparison.
    observe: &'static [(&'static str, &'static str)],
    /// Tables writable on the source side: (table, arity).
    src_table: (&'static str, usize),
    /// Tables writable on the target side.
    tgt_table: (&'static str, usize),
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "split",
        script: "CREATE SCHEMA VERSION V2 FROM V1 WITH \
                 SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 3;",
        observe: &[("V1", "T"), ("V2", "R"), ("V2", "S")],
        src_table: ("T", 2),
        tgt_table: ("R", 2),
    },
    Scenario {
        name: "add_column",
        script: "CREATE SCHEMA VERSION V2 FROM V1 WITH \
                 ADD COLUMN c AS a + b INTO T;",
        observe: &[("V1", "T"), ("V2", "T")],
        src_table: ("T", 2),
        tgt_table: ("T", 3),
    },
    Scenario {
        name: "drop_column",
        script: "CREATE SCHEMA VERSION V2 FROM V1 WITH \
                 DROP COLUMN b FROM T DEFAULT 7;",
        observe: &[("V1", "T"), ("V2", "T")],
        src_table: ("T", 2),
        tgt_table: ("T", 1),
    },
    Scenario {
        name: "decompose_pk",
        script: "CREATE SCHEMA VERSION V2 FROM V1 WITH \
                 DECOMPOSE TABLE T INTO A(a), B(b) ON PK;",
        observe: &[("V1", "T"), ("V2", "A"), ("V2", "B")],
        src_table: ("T", 2),
        tgt_table: ("A", 1),
    },
    Scenario {
        name: "decompose_fk",
        script: "CREATE SCHEMA VERSION V2 FROM V1 WITH \
                 DECOMPOSE TABLE T INTO A(a), B(b) ON FOREIGN KEY fk;",
        observe: &[("V1", "T"), ("V2", "A"), ("V2", "B")],
        src_table: ("T", 2),
        tgt_table: ("A", 2),
    },
    Scenario {
        name: "merge",
        script: "CREATE SCHEMA VERSION VMID FROM V1 WITH \
                 SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 5; \
                 CREATE SCHEMA VERSION V2 FROM VMID WITH \
                 MERGE TABLE R (a < 5), S (a >= 5) INTO M;",
        observe: &[("V1", "T"), ("VMID", "R"), ("VMID", "S"), ("V2", "M")],
        src_table: ("T", 2),
        tgt_table: ("M", 2),
    },
];

fn build_db(s: &Scenario) -> Inverda {
    let db = Inverda::new();
    db.execute("CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b);")
        .unwrap();
    db.execute(s.script).unwrap();
    db
}

fn row_for(arity: usize, a: i64, b: i64) -> Vec<Value> {
    match arity {
        1 => vec![a.into()],
        2 => vec![a.into(), b.into()],
        3 => vec![a.into(), b.into(), (a + b).into()],
        _ => unreachable!(),
    }
}

/// Apply the random ops. Keys are tracked per side so updates/deletes hit
/// real rows; ops on empty sides are skipped.
fn apply_ops(db: &Inverda, s: &Scenario, ops: &[Op]) {
    let mut src_keys: Vec<Key> = Vec::new();
    let mut tgt_keys: Vec<Key> = Vec::new();
    let (src_v, tgt_v) = ("V1", "V2");
    for op in ops {
        match op {
            Op::InsertSrc { a, b } => {
                let k = db
                    .insert(src_v, s.src_table.0, row_for(s.src_table.1, *a, *b))
                    .unwrap();
                src_keys.push(k);
            }
            Op::InsertTgt { a, b } => {
                // FK-decompose target inserts need a valid fk; use NULL-free
                // payload rows only for plain targets, skip fk targets.
                if s.name == "decompose_fk" {
                    continue;
                }
                let k = db
                    .insert(tgt_v, s.tgt_table.0, row_for(s.tgt_table.1, *a, *b))
                    .unwrap();
                tgt_keys.push(k);
            }
            Op::UpdateSrc { slot, a, b } => {
                if src_keys.is_empty() {
                    continue;
                }
                let k = src_keys[slot % src_keys.len()];
                if let Some(old) = db.get(src_v, s.src_table.0, k).unwrap() {
                    let mut row = row_for(s.src_table.1, *a, *b);
                    if s.name == "decompose_fk" {
                        // Diverging updates to a deduplicated fk payload are
                        // outside the paper's defined semantics (the engine
                        // rejects them with KeyConflict); see DESIGN.md.
                        // Update only the non-shared column.
                        row[1] = old[1].clone();
                    }
                    db.update(src_v, s.src_table.0, k, row).unwrap();
                }
            }
            Op::UpdateTgt { slot, a, b } => {
                if tgt_keys.is_empty() || s.name == "decompose_fk" {
                    continue;
                }
                let k = tgt_keys[slot % tgt_keys.len()];
                if db.get(tgt_v, s.tgt_table.0, k).unwrap().is_some() {
                    db.update(tgt_v, s.tgt_table.0, k, row_for(s.tgt_table.1, *a, *b))
                        .unwrap();
                }
            }
            Op::DeleteSrc { slot } => {
                if src_keys.is_empty() {
                    continue;
                }
                let k = src_keys[slot % src_keys.len()];
                if db.get(src_v, s.src_table.0, k).unwrap().is_some() {
                    db.delete(src_v, s.src_table.0, k).unwrap();
                }
            }
            Op::DeleteTgt { slot } => {
                if tgt_keys.is_empty() {
                    continue;
                }
                let k = tgt_keys[slot % tgt_keys.len()];
                if db.get(tgt_v, s.tgt_table.0, k).unwrap().is_some() {
                    db.delete(tgt_v, s.tgt_table.0, k).unwrap();
                }
            }
        }
    }
}

fn snapshot(db: &Inverda, s: &Scenario) -> String {
    let mut out = String::new();
    for (v, t) in s.observe {
        out.push_str(&format!("{v}.{t}:\n{}", db.scan(v, t).unwrap()));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round-trip laws: the visible state of every version is invariant
    /// under migrations between all materializations (26)(27)(50)(51).
    #[test]
    fn migration_preserves_visible_state(ops in prop::collection::vec(op_strategy(), 0..16)) {
        for s in SCENARIOS {
            let db = build_db(s);
            apply_ops(&db, s, &ops);
            let before = snapshot(&db, s);
            db.materialize(&["V2".to_string()]).unwrap();
            prop_assert_eq!(&snapshot(&db, s), &before, "{} after MATERIALIZE V2", s.name);
            db.materialize(&["V1".to_string()]).unwrap();
            prop_assert_eq!(&snapshot(&db, s), &before, "{} after MATERIALIZE V1", s.name);
        }
    }

    /// The delta write path (generated triggers) agrees exactly with the
    /// state-recomputation oracle, under both materializations.
    #[test]
    fn delta_path_equals_recompute_path(
        ops in prop::collection::vec(op_strategy(), 0..14),
        evolved in any::<bool>(),
    ) {
        for s in SCENARIOS {
            let run = |path: WritePath| {
                let db = build_db(s);
                if evolved {
                    db.materialize(&["V2".to_string()]).unwrap();
                }
                db.set_write_path(path);
                apply_ops(&db, s, &ops);
                snapshot(&db, s)
            };
            prop_assert_eq!(run(WritePath::Delta), run(WritePath::Recompute), "{}", s.name);
        }
    }

    /// Write law (48)/(49): a write through any version is visible through
    /// that same version exactly as written, wherever the data lives.
    #[test]
    fn writes_read_back_exactly(
        a in 0i64..10,
        b in 0i64..10,
        evolved in any::<bool>(),
    ) {
        for s in SCENARIOS {
            let db = build_db(s);
            if evolved {
                db.materialize(&["V2".to_string()]).unwrap();
            }
            let row = row_for(s.src_table.1, a, b);
            let k = db.insert("V1", s.src_table.0, row.clone()).unwrap();
            let read_back = db.get("V1", s.src_table.0, k).unwrap();
            prop_assert_eq!(
                read_back.as_ref(),
                Some(&row),
                "{} insert read-back", s.name
            );
            db.delete("V1", s.src_table.0, k).unwrap();
            prop_assert!(db.get("V1", s.src_table.0, k).unwrap().is_none());
            // Nothing is left anywhere.
            for (v, t) in s.observe {
                prop_assert!(
                    !db.scan(v, t).unwrap().contains_key(k),
                    "{}: ghost row in {v}.{t}", s.name
                );
            }
        }
    }
}

/// Deterministic cross-check: a three-hop chain (the paper's chain law) with
/// mixed writes at every version, migrated through several frontiers.
#[test]
fn chain_of_smos_preserves_state_across_frontiers() {
    let db = Inverda::new();
    db.execute("CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b);")
        .unwrap();
    db.execute(
        "CREATE SCHEMA VERSION V2 FROM V1 WITH SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 5;",
    )
    .unwrap();
    db.execute("CREATE SCHEMA VERSION V3 FROM V2 WITH ADD COLUMN c AS a * 10 INTO R;")
        .unwrap();
    db.execute("CREATE SCHEMA VERSION V4 FROM V3 WITH RENAME COLUMN c IN R TO score;")
        .unwrap();

    for a in 0..10i64 {
        db.insert("V1", "T", vec![a.into(), (a * 2).into()])
            .unwrap();
    }
    db.insert("V4", "R", vec![1.into(), 1.into(), 99.into()])
        .unwrap();
    db.insert("V2", "S", vec![8.into(), 0.into()]).unwrap();

    let observe = [
        ("V1", "T"),
        ("V2", "R"),
        ("V2", "S"),
        ("V3", "R"),
        ("V4", "R"),
    ];
    let snap = |db: &Inverda| {
        observe
            .iter()
            .map(|(v, t)| format!("{v}.{t}:\n{}", db.scan(v, t).unwrap()))
            .collect::<String>()
    };
    let before = snap(&db);
    for target in ["V2", "V4", "V3", "V1", "V4", "V1"] {
        db.materialize(&[target.to_string()]).unwrap();
        assert_eq!(snap(&db), before, "after MATERIALIZE '{target}'");
    }
}

/// Updating one of two rows that share a deduplicated fk payload is
/// well-defined **un-sharing**: the payload-carrying `ID_R(p, t, B)` memo
/// (see DESIGN.md "The twin-separated FK-DECOMPOSE conflict") rejects the
/// now-stale pairing, so the updated row re-points at the id of its *new*
/// payload — minted fresh, or reused from the registry — while the other
/// sharer keeps the original target row. (Before the payload column, the
/// stale pairing pinned two contradictory payloads onto one generated key
/// and the write was rejected with a `KeyConflict`.)
#[test]
fn diverging_shared_payload_update_unshares_cleanly() {
    let db = Inverda::new();
    db.execute("CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b);")
        .unwrap();
    db.execute(
        "CREATE SCHEMA VERSION V2 FROM V1 WITH \
         DECOMPOSE TABLE T INTO A(a), B(b) ON FOREIGN KEY fk;",
    )
    .unwrap();
    db.execute("MATERIALIZE 'V2';").unwrap();
    let k1 = db.insert("V1", "T", vec![1.into(), 7.into()]).unwrap();
    let k2 = db.insert("V1", "T", vec![2.into(), 7.into()]).unwrap(); // shares B row
    assert_eq!(db.count("V2", "B").unwrap(), 1, "payload 7 deduplicates");
    db.update("V1", "T", k1, vec![1.into(), 8.into()])
        .expect("diverging shared update un-shares");
    // The sharers now reference distinct B rows carrying their payloads.
    assert_eq!(
        db.get("V1", "T", k1).unwrap().unwrap(),
        vec![1.into(), 8.into()]
    );
    assert_eq!(
        db.get("V1", "T", k2).unwrap().unwrap(),
        vec![2.into(), 7.into()]
    );
    let b = db.scan("V2", "B").unwrap();
    let payloads: Vec<Value> = b.iter().map(|(_, row)| row[0].clone()).collect();
    assert_eq!(b.len(), 2, "un-sharing creates a second B row:\n{b}");
    assert!(payloads.contains(&Value::Int(7)) && payloads.contains(&Value::Int(8)));
    let a_rel = db.scan("V2", "A").unwrap();
    let fk_of = |k| match a_rel.get(k).unwrap()[1] {
        Value::Int(fk) => inverda_storage::Key(fk as u64),
        ref other => panic!("non-id fk {other}"),
    };
    assert_ne!(fk_of(k1), fk_of(k2), "sharers must reference distinct rows");
    assert_eq!(b.get(fk_of(k1)).unwrap()[0], Value::Int(8));
    assert_eq!(b.get(fk_of(k2)).unwrap()[0], Value::Int(7));
    // Updating the shared row *through V2* still reaches its referents.
    db.update("V2", "B", fk_of(k2), vec![9.into()]).unwrap();
    assert_eq!(db.get("V1", "T", k2).unwrap().unwrap()[1], Value::Int(9));
    assert_eq!(db.get("V1", "T", k1).unwrap().unwrap()[1], Value::Int(8));
}
