//! Warm/cold equivalence of the cross-statement snapshot store.
//!
//! Two databases run *identical* statement sequences: one with snapshot
//! reuse enabled (the default — reads are served from delta-maintained
//! [`SnapshotStore`] entries whenever their footprints are epoch-valid),
//! one with reuse disabled (every statement re-resolves virtual relations
//! from scratch, the pre-store behavior). After **every** write, every
//! version's visible state must be byte-identical between the two — the
//! `Display` form includes tuple identifiers and skolem-minted ids (the
//! TasKy2 `Author` keys), so any divergence in id minting order, delta
//! patching, footprint invalidation, or aux-table purging shows up as a
//! mismatch.
//!
//! Genealogies under test:
//! * the full TasKy triple (SPLIT + DROP COLUMN branch, FK-DECOMPOSE +
//!   RENAME branch — the latter is staged/id-generating, served by the
//!   recompute propagation fallback and, since PR 4, *maintained* by
//!   recompute-vs-stored patching rather than invalidated);
//! * an overlapping two-arm SPLIT, whose twins can be separated by
//!   one-sided updates and whose deletes trigger the auxiliary-table purge
//!   (DESIGN.md) — purges bypass delta propagation and must force
//!   invalidation, not patching;
//! * an id-minting SMO *chain* (FK-DECOMPOSE with a SPLIT stacked on top),
//!   driving two-phase minting, hop arenas, and staged maintenance at
//!   widths {1, 2, 4, 8}.
//!
//! [`SnapshotStore`]: inverda_core::SnapshotStore

use inverda_core::Inverda;
use inverda_storage::{Key, Value};
use proptest::prelude::*;

/// A randomly generated logical statement against a named version.table.
#[derive(Debug, Clone)]
enum Op {
    Insert {
        target: usize,
        vals: Vec<i64>,
    },
    Update {
        target: usize,
        slot: usize,
        vals: Vec<i64>,
    },
    Delete {
        target: usize,
        slot: usize,
    },
    Materialize {
        version: usize,
    },
}

fn op_strategy(n_targets: usize, n_versions: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_targets, prop::collection::vec(0i64..6, 4..5))
            .prop_map(|(target, vals)| Op::Insert { target, vals }),
        (
            0..n_targets,
            0usize..12,
            prop::collection::vec(0i64..6, 4..5)
        )
            .prop_map(|(target, slot, vals)| Op::Update { target, slot, vals }),
        (0..n_targets, 0usize..12).prop_map(|(target, slot)| Op::Delete { target, slot }),
        (0..n_versions).prop_map(|version| Op::Materialize { version }),
    ]
}

/// One database pair under a fixed genealogy and target list.
struct Harness {
    warm: Inverda,
    cold: Inverda,
    /// (version, table, row builder) — how to write each target.
    targets: Vec<(&'static str, &'static str)>,
    versions: Vec<&'static str>,
    /// Keys minted so far (identical in both databases by construction).
    keys: Vec<Key>,
}

impl Harness {
    fn new(
        script: &str,
        targets: Vec<(&'static str, &'static str)>,
        versions: Vec<&'static str>,
    ) -> Self {
        let warm = Inverda::new();
        warm.execute(script).expect("script");
        assert!(warm.snapshot_reuse());
        let cold = Inverda::new();
        cold.execute(script).expect("script");
        cold.set_snapshot_reuse(false);
        Harness {
            warm,
            cold,
            targets,
            versions,
            keys: Vec::new(),
        }
    }

    /// Visible state of every version.table of the genealogy, as text. A
    /// scan that fails (reachable twin-separated corners can make the
    /// id-generating mappings report a clean KeyConflict — pre-existing
    /// engine behavior) is recorded as its error text, so warm and cold
    /// must fail identically too.
    fn visible(db: &Inverda) -> String {
        let mut out = String::new();
        for v in db.versions() {
            let mut tables = db.tables_of(&v).unwrap();
            tables.sort();
            for t in tables {
                match db.scan(&v, &t) {
                    Ok(rel) => out.push_str(&format!("{v}.{t}:\n{rel}")),
                    Err(e) => out.push_str(&format!("{v}.{t}: error {e:?}\n")),
                }
            }
        }
        out
    }

    /// Build a row for `table` from the generated values.
    fn row(&self, target: usize, vals: &[i64]) -> Vec<Value> {
        let (_, table) = self.targets[target];
        match table {
            // TasKy genealogy rows.
            "Task" => vec![
                Value::text(format!("author{}", vals[0])),
                Value::text(format!("task{}", vals[1])),
                Value::Int(vals[2] % 3 + 1),
            ],
            "Todo" => vec![
                Value::text(format!("author{}", vals[0])),
                Value::text(format!("todo{}", vals[1])),
            ],
            // Minting-chain genealogy rows: D/W carry (a, b, c) where c is
            // the to-be-decomposed payload — few distinct values, so the
            // generated ids deduplicate and get reused across writes.
            "D" | "W" => vec![
                Value::Int(vals[0] % 5),
                Value::text(format!("b{}", vals[1])),
                Value::text(format!("c{}", vals[2] % 3)),
            ],
            // Overlapping-split genealogy rows: R/S carry (a, b).
            _ => vec![Value::Int(vals[0]), Value::text(format!("b{}", vals[1]))],
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Insert { target, vals } => {
                let (v, t) = self.targets[*target];
                let row = self.row(*target, vals);
                let rw = self.warm.insert(v, t, row.clone());
                let rc = self.cold.insert(v, t, row);
                match (rw, rc) {
                    (Ok(kw), Ok(kc)) => {
                        assert_eq!(kw, kc, "key sequences must stay in lockstep");
                        self.keys.push(kw);
                    }
                    (rw, rc) => assert_eq!(
                        rw.is_ok(),
                        rc.is_ok(),
                        "insert outcome diverged: {rw:?} vs {rc:?}"
                    ),
                }
            }
            Op::Update { target, slot, vals } => {
                if self.keys.is_empty() {
                    return;
                }
                let key = self.keys[slot % self.keys.len()];
                let (v, t) = self.targets[*target];
                let row = self.row(*target, vals);
                let rw = self.warm.update(v, t, key, row.clone());
                let rc = self.cold.update(v, t, key, row);
                assert_eq!(
                    rw.is_ok(),
                    rc.is_ok(),
                    "update outcome diverged: {rw:?} vs {rc:?}"
                );
            }
            Op::Delete { target, slot } => {
                if self.keys.is_empty() {
                    return;
                }
                let key = self.keys[slot % self.keys.len()];
                let (v, t) = self.targets[*target];
                let rw = self.warm.delete(v, t, key);
                let rc = self.cold.delete(v, t, key);
                assert_eq!(
                    rw.is_ok(),
                    rc.is_ok(),
                    "delete outcome diverged: {rw:?} vs {rc:?}"
                );
            }
            Op::Materialize { version } => {
                // Some reachable twin-separated states make a migration
                // fail with a clean KeyConflict (a pre-existing engine
                // limit, identical since the seed); warm and cold must
                // agree on the outcome, and a failed migration leaves both
                // databases untouched.
                let v = self.versions[*version];
                let rw = self.warm.materialize(&[v.to_string()]);
                let rc = self.cold.materialize(&[v.to_string()]);
                assert_eq!(
                    rw.is_ok(),
                    rc.is_ok(),
                    "materialize outcome diverged: {rw:?} vs {rc:?}"
                );
            }
        }
    }

    fn check(&self, context: &str) {
        assert_eq!(
            Self::visible(&self.warm),
            Self::visible(&self.cold),
            "warm snapshot store diverged from cold resolution after {context}"
        );
        // Stronger than the visible-state check: every valid store entry —
        // including intermediate table versions and virtual aux tables that
        // no scan reads directly — must equal its cold resolution.
        let audit = self.warm.snapshot_store_audit();
        assert!(
            audit.is_empty(),
            "snapshot store entries diverged after {context}:\n{}",
            audit.join("\n")
        );
    }
}

const TASKY_SCRIPT: &str =
    "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
     CREATE SCHEMA VERSION Do! FROM TasKy WITH \
       SPLIT TABLE Task INTO Todo WITH prio = 1; \
       DROP COLUMN prio FROM Todo DEFAULT 1; \
     CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
       DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
       RENAME COLUMN author IN Author TO name;";

const SPLIT_SCRIPT: &str = "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b); \
     CREATE SCHEMA VERSION V2 FROM V1 WITH \
       SPLIT TABLE T INTO R WITH a < 5, S WITH a >= 3;";

/// An id-minting SMO *chain*: FK-DECOMPOSE (the generator) with a SPLIT
/// stacked on the decomposed side, so staged/minting mappings sit in the
/// middle of multi-hop drains and of the backward maintenance walk.
const MINT_CHAIN_SCRIPT: &str = "CREATE SCHEMA VERSION V1 WITH CREATE TABLE D(a, b, c); \
     CREATE SCHEMA VERSION V2 FROM V1 WITH \
       DECOMPOSE TABLE D INTO D(a, b), U(c) ON FOREIGN KEY c; \
     CREATE SCHEMA VERSION V3 FROM V2 WITH \
       SPLIT TABLE D INTO W WITH a < 3;";

proptest! {
    /// TasKy: random writes through all three versions, with occasional
    /// migrations. Covers the SPLIT/DROP COLUMN delta-patched path, the
    /// staged FK-DECOMPOSE recompute path (now maintained via
    /// recompute-vs-stored), skolem id order (Author keys appear in the
    /// visible state), and store clears on materialization.
    #[test]
    fn warm_reads_equal_cold_resolution_tasky(
        ops in prop::collection::vec(op_strategy(2, 3), 1..25),
        tsel in 0usize..3,
        batch in any::<bool>(),
    ) {
        // Randomize the parallel width and the batch executor: warm ≡ cold
        // must hold — including skolem id assignment — whether the engine
        // evaluates sequentially, fans out on the pool, or runs the
        // vectorized plans.
        inverda_core::set_threads(Some([1usize, 2, 4][tsel]));
        inverda_datalog::batch::set_enabled(Some(batch));
        inverda_datalog::tuning::set_batch_min_keys(Some(1));
        let mut h = Harness::new(
            TASKY_SCRIPT,
            vec![("TasKy", "Task"), ("Do!", "Todo")],
            vec!["TasKy", "Do!", "TasKy2"],
        );
        for (i, op) in ops.iter().enumerate() {
            h.apply(op);
            h.check(&format!("op {i}: {op:?}"));
        }
    }

    /// Overlapping SPLIT: twins, separated twins (one-sided updates), and
    /// deletes whose aux purge must invalidate rather than patch.
    #[test]
    fn warm_reads_equal_cold_resolution_overlapping_split(
        ops in prop::collection::vec(op_strategy(3, 2), 1..25),
        tsel in 0usize..3,
        batch in any::<bool>(),
    ) {
        inverda_core::set_threads(Some([1usize, 2, 4][tsel]));
        inverda_datalog::batch::set_enabled(Some(batch));
        inverda_datalog::tuning::set_batch_min_keys(Some(1));
        let mut h = Harness::new(
            SPLIT_SCRIPT,
            vec![("V1", "T"), ("V2", "R"), ("V2", "S")],
            vec!["V1", "V2"],
        );
        for (i, op) in ops.iter().enumerate() {
            h.apply(op);
            h.check(&format!("op {i}: {op:?}"));
        }
    }

    /// Id-minting SMO chain (FK-DECOMPOSE + stacked SPLIT): random writes
    /// through the source and the far end of the chain, with migrations
    /// relocating the data across all three frontiers. This drives the
    /// staged/minting mappings through every maintained path — two-phase
    /// minting under fan-out (widths 1/2/4/8), hop-arena drains, and the
    /// recompute-vs-stored maintenance that now *patches* staged mappings —
    /// and the visible states (which include the generated `U` keys) must
    /// stay byte-identical between the warm and cold databases after every
    /// single op.
    #[test]
    fn warm_reads_equal_cold_resolution_minting_chain(
        ops in prop::collection::vec(op_strategy(2, 3), 1..25),
        tsel in 0usize..4,
        batch in any::<bool>(),
    ) {
        inverda_core::set_threads(Some([1usize, 2, 4, 8][tsel]));
        inverda_datalog::batch::set_enabled(Some(batch));
        inverda_datalog::tuning::set_batch_min_keys(Some(1));
        let mut h = Harness::new(
            MINT_CHAIN_SCRIPT,
            vec![("V1", "D"), ("V3", "W")],
            vec!["V1", "V2", "V3"],
        );
        for (i, op) in ops.iter().enumerate() {
            h.apply(op);
            h.check(&format!("op {i}: {op:?}"));
        }
    }
}

/// Staged / id-minting mappings are now **delta-maintained**, not
/// invalidated: with the FK-DECOMPOSE branch materialized, a write through
/// the virtualized source side must leave every warm snapshot patched in
/// place (zero invalidations), and the next reads of the source and SPLIT
/// versions must be served warm — while still agreeing with cold
/// re-resolution (store audit).
#[test]
fn staged_mappings_are_maintained_not_invalidated() {
    let db = Inverda::new();
    db.execute(TASKY_SCRIPT).unwrap();
    let mut keys = Vec::new();
    for i in 0..8 {
        keys.push(
            db.insert(
                "TasKy",
                "Task",
                vec![
                    Value::text(format!("a{}", i % 3)),
                    Value::text(format!("t{i}")),
                    Value::Int(i % 3 + 1),
                ],
            )
            .unwrap(),
        );
    }
    // Relocate onto the FK-DECOMPOSE side: TasKy and Do! now resolve
    // through the staged γ_src of the DECOMPOSE (plus the SPLIT chain).
    db.execute("MATERIALIZE 'TasKy2';").unwrap();
    for v in db.versions() {
        for t in db.tables_of(&v).unwrap() {
            db.scan(&v, &t).unwrap();
        }
    }
    let before = db.snapshot_stats();
    // Write through the far end of the virtual chain: the drain traverses
    // the SPLIT/DROP hops *and* the staged FK-DECOMPOSE hop, so maintenance
    // must walk all of them back.
    db.update(
        "Do!",
        "Todo",
        keys[0],
        vec![Value::text("a0"), Value::text("edited")],
    )
    .unwrap();
    let after_write = db.snapshot_stats();
    assert_eq!(
        after_write.invalidations, before.invalidations,
        "a staged-mapping write must patch, not invalidate: {before:?} -> {after_write:?}"
    );
    assert!(
        after_write.patches > before.patches,
        "no maintenance patches recorded: {before:?} -> {after_write:?}"
    );
    // The maintained snapshots serve the next reads warm...
    db.scan("TasKy", "Task").unwrap();
    db.scan("Do!", "Todo").unwrap();
    let after_read = db.snapshot_stats();
    assert!(
        after_read.hits > after_write.hits,
        "maintained entries were not served warm: {after_write:?} -> {after_read:?}"
    );
    assert_eq!(after_read.misses, after_write.misses, "reads went cold");
    // ...and they are byte-identical to cold resolution.
    let audit = db.snapshot_store_audit();
    assert!(
        audit.is_empty(),
        "maintained entries diverged:\n{}",
        audit.join("\n")
    );
}

/// The warm database must actually serve warm reads on this workload —
/// otherwise the differential tests above prove nothing.
#[test]
fn warm_path_is_exercised() {
    let db = Inverda::new();
    db.execute(TASKY_SCRIPT).unwrap();
    for i in 0..20 {
        db.insert(
            "TasKy",
            "Task",
            vec![
                Value::text(format!("a{i}")),
                Value::text(format!("t{i}")),
                Value::Int(i % 3 + 1),
            ],
        )
        .unwrap();
    }
    let _ = db.scan("Do!", "Todo").unwrap();
    let _ = db.scan("TasKy2", "Author").unwrap();
    let before = db.snapshot_stats();
    let keys: Vec<Key> = db.scan("Do!", "Todo").unwrap().keys().collect();
    for (n, k) in keys.iter().enumerate() {
        db.update(
            "Do!",
            "Todo",
            *k,
            vec![Value::text(format!("a{n}")), Value::text("edited")],
        )
        .unwrap();
        let _ = db.scan("Do!", "Todo").unwrap();
    }
    let after = db.snapshot_stats();
    assert!(
        after.hits > before.hits,
        "no warm hits recorded: {before:?} -> {after:?}"
    );
    assert!(
        after.patches > before.patches,
        "no delta patches recorded: {before:?} -> {after:?}"
    );
}
