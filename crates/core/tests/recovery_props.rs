//! Crash-recovery equivalence: a durable database recovered from a
//! (possibly torn) write-ahead log must be byte-identical to an in-memory
//! oracle that executed exactly the statements the surviving log prefix
//! covers.
//!
//! Each case runs a random statement sequence (writes, DDL, MATERIALIZE,
//! id-minting chains) against a durable [`Inverda`], recording the log
//! length after every statement as the statement's commit boundary. A
//! crash is simulated by copying the durable directory and truncating the
//! copied log at some byte — a record boundary, the middle of a record,
//! inside the file header, or nowhere at all — then recovering the copy
//! with [`Inverda::open_in`]. The oracle is a fresh in-memory database
//! replaying the prefix of statements whose boundary survived the cut;
//! recovery must reproduce its visible state across every schema version,
//! its physical tables, its skolem registry dump, and its key-sequence
//! position. Statements the harness issues can fail (duplicate DDL,
//! missing rows, twin-separated `KeyConflict` migrations); the oracle
//! replays those failures too, so even the registry deltas and consumed
//! keys of *rejected* statements must survive a crash exactly as they
//! survive in memory.
//!
//! Randomized over parallel widths {1, 2, 4}, warm/cold snapshot stores,
//! and per-record vs. group commit; checkpoints rotate the log mid-run so
//! cuts also land in post-rotation logs.

use inverda_core::{DurabilityMode, DurabilityOptions, Inverda};
use inverda_storage::{Key, Value};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "inverda-recprops-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Copy every regular file of `src` into `dst` (durable dirs are flat).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create crash-copy dir");
    for entry in std::fs::read_dir(src).expect("read durable dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
        }
    }
}

/// The log file of the newest generation in `dir` — the one recovery
/// replays (rotation removes stale generations, but a crash mid-rotation
/// can leave two).
fn newest_wal(dir: &Path) -> PathBuf {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).expect("read crash-copy dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(gen_text) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
        else {
            continue;
        };
        let Ok(generation) = gen_text.parse::<u64>() else {
            continue;
        };
        if best.as_ref().map(|(g, _)| generation > *g).unwrap_or(true) {
            best = Some((generation, entry.path()));
        }
    }
    best.expect("a wal file in the durable dir").1
}

/// A randomly generated logical statement against a named version.table.
#[derive(Debug, Clone)]
enum Op {
    Insert {
        target: usize,
        vals: Vec<i64>,
    },
    Update {
        target: usize,
        slot: usize,
        vals: Vec<i64>,
    },
    Delete {
        target: usize,
        slot: usize,
    },
    Materialize {
        version: usize,
    },
    /// One statement from the genealogy's extra-DDL pool (create/drop of a
    /// scratch version); repeats fail cleanly and must replay as failures.
    Ddl {
        which: usize,
    },
}

fn op_strategy(n_targets: usize, n_versions: usize, n_ddl: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_targets, prop::collection::vec(0i64..6, 4..5))
            .prop_map(|(target, vals)| Op::Insert { target, vals }),
        (
            0..n_targets,
            0usize..12,
            prop::collection::vec(0i64..6, 4..5)
        )
            .prop_map(|(target, slot, vals)| Op::Update { target, slot, vals }),
        (0..n_targets, 0usize..12).prop_map(|(target, slot)| Op::Delete { target, slot }),
        (0..n_versions).prop_map(|version| Op::Materialize { version }),
        (0..n_ddl).prop_map(|which| Op::Ddl { which }),
    ]
}

/// What the harness records per executed statement, replayable verbatim on
/// the oracle.
#[derive(Debug, Clone)]
enum Event {
    /// A BiDEL statement executed via [`Inverda::execute`].
    Stmt(String),
    /// A logical write / migration op.
    Write(Op),
}

/// A fixed genealogy under test: setup statements (one BiDEL statement
/// each, so each maps to exactly one log record), writable targets,
/// materializable versions, and an extra-DDL pool.
struct Genealogy {
    statements: &'static [&'static str],
    targets: &'static [(&'static str, &'static str)],
    versions: &'static [&'static str],
    ddl: &'static [&'static str],
}

/// The paper's TasKy triple: SPLIT + DROP COLUMN branch and the staged,
/// id-generating FK-DECOMPOSE + RENAME branch.
static TASKY: Genealogy = Genealogy {
    statements: &[
        "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);",
        "CREATE SCHEMA VERSION Do! FROM TasKy WITH \
           SPLIT TABLE Task INTO Todo WITH prio = 1; \
           DROP COLUMN prio FROM Todo DEFAULT 1;",
        "CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
           DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
           RENAME COLUMN author IN Author TO name;",
    ],
    targets: &[("TasKy", "Task"), ("Do!", "Todo")],
    versions: &["TasKy", "Do!", "TasKy2"],
    ddl: &[
        "CREATE SCHEMA VERSION Xtra FROM TasKy WITH RENAME COLUMN prio IN Task TO rank;",
        "DROP SCHEMA VERSION Xtra;",
    ],
};

/// An id-minting SMO chain (FK-DECOMPOSE with a SPLIT stacked on top):
/// skolem minting order and registry dumps are the recovery-critical state.
static MINT_CHAIN: Genealogy = Genealogy {
    statements: &[
        "CREATE SCHEMA VERSION V1 WITH CREATE TABLE D(a, b, c);",
        "CREATE SCHEMA VERSION V2 FROM V1 WITH \
           DECOMPOSE TABLE D INTO D(a, b), U(c) ON FOREIGN KEY c;",
        "CREATE SCHEMA VERSION V3 FROM V2 WITH SPLIT TABLE D INTO W WITH a < 3;",
    ],
    targets: &[("V1", "D"), ("V3", "W")],
    versions: &["V1", "V2", "V3"],
    ddl: &[
        "CREATE SCHEMA VERSION Xtra FROM V1 WITH RENAME COLUMN b IN D TO bb;",
        "DROP SCHEMA VERSION Xtra;",
    ],
};

/// Build a row for `table` from the generated values (house shapes shared
/// with the snapshot-reuse suite).
fn row_for(table: &str, vals: &[i64]) -> Vec<Value> {
    match table {
        "Task" => vec![
            Value::text(format!("author{}", vals[0])),
            Value::text(format!("task{}", vals[1])),
            Value::Int(vals[2] % 3 + 1),
        ],
        "Todo" => vec![
            Value::text(format!("author{}", vals[0])),
            Value::text(format!("todo{}", vals[1])),
        ],
        "D" | "W" => vec![
            Value::Int(vals[0] % 5),
            Value::text(format!("b{}", vals[1])),
            Value::text(format!("c{}", vals[2] % 3)),
        ],
        _ => vec![Value::Int(vals[0]), Value::text(format!("b{}", vals[1]))],
    }
}

/// Execute one event, tracking minted keys exactly as the harness does —
/// deterministic, so replaying a prefix reconstructs the same key choices.
fn apply_event(db: &Inverda, keys: &mut Vec<Key>, g: &Genealogy, event: &Event) {
    match event {
        Event::Stmt(text) => {
            let _ = db.execute(text);
        }
        Event::Write(op) => match op {
            Op::Insert { target, vals } => {
                let (v, t) = g.targets[*target];
                if let Ok(k) = db.insert(v, t, row_for(t, vals)) {
                    keys.push(k);
                }
            }
            Op::Update { target, slot, vals } => {
                if keys.is_empty() {
                    return;
                }
                let key = keys[*slot % keys.len()];
                let (v, t) = g.targets[*target];
                let _ = db.update(v, t, key, row_for(t, vals));
            }
            Op::Delete { target, slot } => {
                if keys.is_empty() {
                    return;
                }
                let key = keys[*slot % keys.len()];
                let (v, t) = g.targets[*target];
                let _ = db.delete(v, t, key);
            }
            Op::Materialize { version } => {
                let _ = db.materialize(&[g.versions[*version].to_string()]);
            }
            Op::Ddl { .. } => unreachable!("resolved to Event::Stmt by the harness"),
        },
    }
}

/// Visible state of every version.table, as text (errors included: a
/// recovered database must fail exactly where the oracle fails).
fn visible(db: &Inverda) -> String {
    let mut out = String::new();
    for v in db.versions() {
        let mut tables = db.tables_of(&v).unwrap();
        tables.sort();
        for t in tables {
            match db.scan(&v, &t) {
                Ok(rel) => out.push_str(&format!("{v}.{t}:\n{rel}")),
                Err(e) => out.push_str(&format!("{v}.{t}: error {e:?}\n")),
            }
        }
    }
    out
}

/// Every physical table, sorted by name, as text.
fn physical(db: &Inverda) -> String {
    let mut names: Vec<String> = db.physical_tables().into_iter().map(|(n, _)| n).collect();
    names.sort();
    names
        .iter()
        .map(|n| format!("{n}:\n{}", db.debug_physical(n)))
        .collect()
}

/// One durable database under test, with per-statement commit boundaries.
struct Harness {
    durable: Inverda,
    dir: PathBuf,
    opts: DurabilityOptions,
    reuse: bool,
    genealogy: &'static Genealogy,
    /// Everything executed so far, replayable on the oracle.
    events: Vec<Event>,
    /// Log length (within the live generation) after each event: the byte
    /// up to which the event's record — if it wrote one — is complete.
    boundaries: Vec<u64>,
    /// Events covered by the last checkpoint; they survive any truncation
    /// of the live log.
    floor: usize,
    keys: Vec<Key>,
}

impl Harness {
    fn new(genealogy: &'static Genealogy, opts: DurabilityOptions, reuse: bool) -> Harness {
        let dir = fresh_dir("db");
        let durable = Inverda::open_in(&dir, opts.clone()).expect("open durable db");
        durable.set_snapshot_reuse(reuse);
        let mut h = Harness {
            durable,
            dir,
            opts,
            reuse,
            genealogy,
            events: Vec::new(),
            boundaries: Vec::new(),
            floor: 0,
            keys: Vec::new(),
        };
        for stmt in genealogy.statements {
            h.run(Event::Stmt((*stmt).to_string()));
        }
        h
    }

    fn run(&mut self, event: Event) {
        apply_event(&self.durable, &mut self.keys, self.genealogy, &event);
        self.events.push(event);
        self.boundaries
            .push(self.durable.wal_len().expect("durable db has a log"));
    }

    fn op(&mut self, op: &Op) {
        match op {
            Op::Ddl { which } => {
                let stmt = self.genealogy.ddl[*which % self.genealogy.ddl.len()];
                self.run(Event::Stmt(stmt.to_string()));
            }
            other => self.run(Event::Write(other.clone())),
        }
    }

    /// Explicit checkpoint: rotates the log, so earlier events can no
    /// longer be lost to truncation.
    fn checkpoint(&mut self) {
        self.durable.checkpoint().expect("checkpoint");
        self.floor = self.events.len();
    }

    /// Crash by truncating a *copy* of the durable directory's log at byte
    /// `cut` and verify recovery against the surviving-prefix oracle.
    fn crash_and_check(&self, cut: u64, context: &str) {
        let survivors = self.floor
            + self.boundaries[self.floor..]
                .iter()
                .filter(|b| **b <= cut)
                .count();
        self.crash_and_check_with(
            |wal| {
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(wal)
                    .expect("open wal copy")
                    .set_len(cut)
                    .expect("truncate wal copy");
            },
            survivors,
            &format!("{context}, cut at byte {cut}"),
        );
    }

    /// Crash with an arbitrary mutation of the copied log file; the caller
    /// states how many events the damaged log still covers.
    fn crash_and_check_with(&self, damage: impl FnOnce(&Path), survivors: usize, context: &str) {
        let scratch = fresh_dir("crash");
        copy_dir(&self.dir, &scratch);
        damage(&newest_wal(&scratch));
        let recovered = Inverda::open_in(&scratch, self.opts.clone()).expect("recovery");
        recovered.set_snapshot_reuse(self.reuse);
        let oracle = Inverda::new_in_memory();
        oracle.set_snapshot_reuse(self.reuse);
        let mut keys = Vec::new();
        for event in &self.events[..survivors] {
            apply_event(&oracle, &mut keys, self.genealogy, event);
        }
        let context = format!(
            "{context} ({survivors}/{} events survive)",
            self.events.len()
        );
        assert_eq!(
            recovered.debug_key_seq(),
            oracle.debug_key_seq(),
            "key sequence diverged after recovery: {context}"
        );
        assert_eq!(
            recovered.debug_registry(),
            oracle.debug_registry(),
            "skolem registry diverged after recovery: {context}"
        );
        assert_eq!(
            physical(&recovered),
            physical(&oracle),
            "physical state diverged after recovery: {context}"
        );
        assert_eq!(
            visible(&recovered),
            visible(&oracle),
            "visible state diverged after recovery: {context}"
        );
        // The reads above can mint (cold resolution of staged mappings);
        // identical states must have minted identically.
        assert_eq!(
            recovered.debug_registry(),
            oracle.debug_registry(),
            "post-read registry diverged: {context}"
        );
        drop(recovered);
        std::fs::remove_dir_all(&scratch).ok();
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// The three cut shapes every case is checked under: a random byte (header
/// tears, mid-record tears and clean cuts all reachable), an exact record
/// boundary, and no loss at all.
fn run_cuts(h: &Harness, cut_seed: u64) {
    let total = h.durable.wal_len().expect("durable db has a log");
    h.crash_and_check(cut_seed % (total + 1), "random cut");
    let live = &h.boundaries[h.floor..];
    if !live.is_empty() {
        h.crash_and_check(live[(cut_seed as usize) % live.len()], "boundary cut");
    }
    h.crash_and_check(total, "full-length cut");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TasKy genealogy: random writes through two versions, migrations,
    /// scratch DDL, and mid-run checkpoints, then three crash shapes.
    #[test]
    fn recovery_matches_surviving_prefix_oracle_tasky(
        ops in prop::collection::vec(op_strategy(2, 3, 2), 1..14),
        tsel in 0usize..3,
        cold in 0usize..2,
        msel in 0usize..2,
        ckpt_at in 0usize..24,
        cut_seed in any::<u64>(),
    ) {
        inverda_core::set_threads(Some([1usize, 2, 4][tsel]));
        let opts = DurabilityOptions {
            mode: [DurabilityMode::Commit, DurabilityMode::Group][msel],
            group_size: 3,
            checkpoint_every: None,
        };
        let mut h = Harness::new(&TASKY, opts, cold == 0);
        for (i, op) in ops.iter().enumerate() {
            if i == ckpt_at {
                h.checkpoint();
            }
            h.op(op);
        }
        run_cuts(&h, cut_seed);
    }

    /// Id-minting chain: crash recovery must reproduce skolem minting
    /// order and registry dumps exactly, across migrations that re-mint.
    #[test]
    fn recovery_matches_surviving_prefix_oracle_minting_chain(
        ops in prop::collection::vec(op_strategy(2, 3, 2), 1..14),
        tsel in 0usize..3,
        cold in 0usize..2,
        msel in 0usize..2,
        ckpt_at in 0usize..24,
        cut_seed in any::<u64>(),
    ) {
        inverda_core::set_threads(Some([1usize, 2, 4][tsel]));
        let opts = DurabilityOptions {
            mode: [DurabilityMode::Commit, DurabilityMode::Group][msel],
            group_size: 3,
            checkpoint_every: None,
        };
        let mut h = Harness::new(&MINT_CHAIN, opts, cold == 0);
        for (i, op) in ops.iter().enumerate() {
            if i == ckpt_at {
                h.checkpoint();
            }
            h.op(op);
        }
        run_cuts(&h, cut_seed);
    }
}

/// A flipped bit inside a mid-log record truncates recovery at the last
/// intact record before it — CRC catches the damage, nothing panics, and
/// the prefix is intact.
#[test]
fn bit_flip_mid_log_recovers_the_intact_prefix() {
    inverda_core::set_threads(Some(1));
    let opts = DurabilityOptions {
        mode: DurabilityMode::Commit,
        group_size: 1,
        checkpoint_every: None,
    };
    let mut h = Harness::new(&TASKY, opts, true);
    for i in 0..6 {
        h.op(&Op::Insert {
            target: 0,
            vals: vec![i, i + 1, i + 2, 0],
        });
    }
    // Corrupt one byte inside the record of the 4th insert (event index 6:
    // 3 setup statements + 3 intact inserts precede it).
    let intact = h.genealogy.statements.len() + 3;
    let pos = h.boundaries[intact - 1] + 10;
    assert!(pos < h.boundaries[intact], "flip lands inside the record");
    h.crash_and_check_with(
        |wal| {
            let mut bytes = std::fs::read(wal).expect("read wal copy");
            bytes[pos as usize] ^= 0x40;
            std::fs::write(wal, &bytes).expect("write damaged wal");
        },
        intact,
        "bit flip in 4th insert record",
    );
}

/// Losing the entire live log still recovers the last checkpoint: the
/// missing file reads as an empty log, not an error.
#[test]
fn wal_loss_after_checkpoint_recovers_checkpoint_state() {
    inverda_core::set_threads(Some(1));
    let opts = DurabilityOptions {
        mode: DurabilityMode::Commit,
        group_size: 1,
        checkpoint_every: None,
    };
    let mut h = Harness::new(&TASKY, opts, true);
    for i in 0..4 {
        h.op(&Op::Insert {
            target: 0,
            vals: vec![i, i, i, 0],
        });
    }
    h.op(&Op::Materialize { version: 2 });
    h.checkpoint();
    for i in 0..3 {
        h.op(&Op::Insert {
            target: 1,
            vals: vec![i, i, i, 0],
        });
    }
    h.crash_and_check_with(
        |wal| std::fs::remove_file(wal).expect("remove wal copy"),
        h.floor,
        "live log deleted",
    );
}

/// Auto-checkpointing (`checkpoint_every`) rotates the log unprompted,
/// prunes stale generations, and recovery of the rotated directory equals
/// the live database.
#[test]
fn auto_checkpoint_rotates_prunes_and_recovers() {
    inverda_core::set_threads(Some(1));
    let dir = fresh_dir("autockpt");
    let opts = DurabilityOptions {
        mode: DurabilityMode::Commit,
        group_size: 1,
        checkpoint_every: Some(4),
    };
    let db = Inverda::open_in(&dir, opts).expect("open durable db");
    for stmt in TASKY.statements {
        db.execute(stmt).expect("setup");
    }
    for i in 0..10 {
        db.insert("TasKy", "Task", row_for("Task", &[i, i, i, 0]))
            .expect("insert");
    }
    assert!(
        dir.join("checkpoint.bin").exists(),
        "auto-checkpoint never fired"
    );
    let wals: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().to_str().map(str::to_string))
        .filter(|n| n.starts_with("wal-"))
        .collect();
    assert_eq!(wals.len(), 1, "stale generations not pruned: {wals:?}");
    assert_ne!(wals[0], "wal-1.log", "log never rotated");
    // Recovery of a copy equals the live instance.
    let scratch = fresh_dir("autockpt-copy");
    copy_dir(&dir, &scratch);
    let recovered = Inverda::open(&scratch).expect("recovery");
    assert_eq!(recovered.debug_key_seq(), db.debug_key_seq());
    assert_eq!(recovered.debug_registry(), db.debug_registry());
    assert_eq!(physical(&recovered), physical(&db));
    assert_eq!(visible(&recovered), visible(&db));
    drop(recovered);
    std::fs::remove_dir_all(&scratch).ok();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// `DurabilityMode::Off` through `open_in` is a purely in-memory database:
/// no log, no durable dir, nothing written.
#[test]
fn off_mode_touches_no_disk() {
    let dir = fresh_dir("off");
    let opts = DurabilityOptions {
        mode: DurabilityMode::Off,
        group_size: 64,
        checkpoint_every: None,
    };
    let db = Inverda::open_in(&dir, opts).expect("open");
    db.execute(TASKY.statements[0]).expect("ddl");
    db.insert("TasKy", "Task", row_for("Task", &[1, 2, 3, 0]))
        .expect("insert");
    assert_eq!(db.wal_len(), None);
    assert_eq!(db.durable_dir(), None);
    let entries = std::fs::read_dir(&dir).expect("read dir").count();
    assert_eq!(entries, 0, "Off mode wrote into the directory");
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash under concurrent load: a durable Group-mode serving pipeline takes
/// writes from concurrent clients, and every acknowledgement carries the
/// log length at which that statement's records end. Truncating a copy of
/// the log at any such boundary — or just past one, tearing the next
/// record — and recovering must equal an in-memory oracle replaying, in
/// epoch order, exactly the acknowledged operations whose records fit the
/// cut. This is the admitted-but-uncommitted case: under group commit the
/// tail of the log is written but not yet fsynced, and a crash may keep
/// any record-aligned prefix of it.
#[test]
fn crash_under_concurrent_load_recovers_acknowledged_prefix() {
    use inverda_core::{LogicalWrite, ServingInverda, ServingOp};
    use std::sync::Mutex;

    inverda_core::set_threads(Some(2));
    let dir = fresh_dir("serving");
    let opts = DurabilityOptions {
        mode: DurabilityMode::Group,
        group_size: 3,
        checkpoint_every: None,
    };
    let db = Inverda::open_in(&dir, opts.clone()).expect("open durable db");
    for stmt in TASKY.statements {
        db.execute(stmt).expect("setup");
    }
    let setup_len = db.wal_len().expect("durable db has a log");
    let serving = ServingInverda::over(db);

    // (epoch, log length after the op, the op itself) for every
    // acknowledged request, gathered across threads.
    let recs: Mutex<Vec<(u64, u64, ServingOp)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for w in 0..2u64 {
            let client = serving.client();
            let recs = &recs;
            scope.spawn(move || {
                let mut keys: Vec<Key> = Vec::new();
                for i in 0..6u64 {
                    let (version, table) = TASKY.targets[((w + i) % 2) as usize];
                    let mut writes = vec![LogicalWrite::Insert(row_for(
                        table,
                        &[(w * 7 + i) as i64, i as i64, (w + i) as i64, 0],
                    ))];
                    match i % 3 {
                        1 if !keys.is_empty() => {
                            let key = keys[i as usize % keys.len()];
                            writes.push(LogicalWrite::Update(
                                key,
                                row_for(table, &[9, (w + i) as i64, 1, 0]),
                            ));
                        }
                        2 if !keys.is_empty() => {
                            let key = keys.remove(i as usize % keys.len());
                            writes.push(LogicalWrite::Delete(key));
                        }
                        _ => {}
                    }
                    let op = ServingOp::Apply {
                        version: version.to_string(),
                        table: table.to_string(),
                        writes,
                    };
                    let reply = client.submit(op.clone());
                    if let Ok(inverda_core::ServingOutcome::Applied(minted)) = &reply.outcome {
                        keys.extend(minted.iter().flatten());
                    }
                    recs.lock().unwrap().push((
                        reply.epoch,
                        reply.wal_len.expect("durable serving reports log length"),
                        op,
                    ));
                }
            });
        }
        // A DDL client racing the writers: migrations and scratch schema
        // versions, all serialized by the same pipeline.
        let client = serving.client();
        let recs = &recs;
        scope.spawn(move || {
            for stmt in [
                TASKY.ddl[0],
                "MATERIALIZE 'Do!';",
                TASKY.ddl[1],
                "MATERIALIZE 'TasKy';",
            ] {
                let op = ServingOp::Execute(stmt.to_string());
                let reply = client.execute(stmt);
                recs.lock().unwrap().push((
                    reply.epoch,
                    reply.wal_len.expect("durable serving reports log length"),
                    op,
                ));
            }
        });
    });
    serving.shutdown();

    let mut recs = recs.into_inner().unwrap();
    recs.sort_by_key(|(epoch, _, _)| *epoch);
    for (i, (epoch, _, _)) in recs.iter().enumerate() {
        assert_eq!(*epoch, i as u64 + 1, "commit epochs are dense");
    }
    assert!(
        recs.windows(2).all(|w| w[0].1 <= w[1].1),
        "log boundaries are monotone in epoch order"
    );

    // Every boundary is a cut; where there is room, also cut one byte past
    // it to tear the next record's header.
    let total = recs.last().expect("ops ran").1;
    let mut cuts: Vec<u64> = vec![setup_len];
    for w in recs.windows(2) {
        cuts.push(w[0].1);
        if w[0].1 + 1 < w[1].1 {
            cuts.push(w[0].1 + 1);
        }
    }
    cuts.push(total);
    cuts.dedup();

    for cut in cuts {
        let scratch = fresh_dir("serving-crash");
        copy_dir(&dir, &scratch);
        std::fs::OpenOptions::new()
            .write(true)
            .open(newest_wal(&scratch))
            .expect("open wal copy")
            .set_len(cut)
            .expect("truncate wal copy");
        let recovered = Inverda::open_in(&scratch, opts.clone()).expect("recovery");
        let oracle = Inverda::new_in_memory();
        for stmt in TASKY.statements {
            oracle.execute(stmt).expect("oracle setup");
        }
        let survivors = recs.iter().filter(|(_, len, _)| *len <= cut).count();
        for (_, _, op) in recs.iter().filter(|(_, len, _)| *len <= cut) {
            match op {
                ServingOp::Apply {
                    version,
                    table,
                    writes,
                } => {
                    let _ = oracle.apply_many(version, table, writes.clone());
                }
                ServingOp::Execute(stmt) => {
                    let _ = oracle.execute(stmt);
                }
                ServingOp::Checkpoint => unreachable!("no checkpoints in this load"),
            }
        }
        let context = format!("cut at byte {cut} ({survivors}/{} ops survive)", recs.len());
        assert_eq!(
            recovered.debug_key_seq(),
            oracle.debug_key_seq(),
            "key sequence diverged after crash under load: {context}"
        );
        assert_eq!(
            recovered.debug_registry(),
            oracle.debug_registry(),
            "skolem registry diverged after crash under load: {context}"
        );
        assert_eq!(
            physical(&recovered),
            physical(&oracle),
            "physical state diverged after crash under load: {context}"
        );
        assert_eq!(
            visible(&recovered),
            visible(&oracle),
            "visible state diverged after crash under load: {context}"
        );
        drop(recovered);
        std::fs::remove_dir_all(&scratch).ok();
    }
    drop(serving);
    std::fs::remove_dir_all(&dir).ok();
}
