//! Differential testing of γ-chain fusion (`INVERDA_FUSION`).
//!
//! Two databases run *identical* statement sequences: one with chain
//! fusion enabled (the default — runs of adjacent column-level γ mappings
//! are statically inlined into a single compiled rule set), one with
//! fusion disabled (every hop evaluates separately, the pre-fusion
//! behavior). After **every** op, the visible state of every version —
//! whose `Display` form includes tuple identifiers and skolem-minted
//! ids — plus the skolem registry dump and the global key sequence must
//! be byte-identical between the two databases. Any divergence in the
//! inlined rule bodies, the emptiness assumptions, condition hoisting,
//! or fusion-barrier placement shows up as a mismatch.
//!
//! Genealogies under test:
//! * **randomly generated chains** mixing fusable hops (ADD COLUMN /
//!   DROP COLUMN / RENAME COLUMN / RENAME TABLE) with SPLIT and
//!   FK-DECOMPOSE fusion barriers, so fused segments start and stop at
//!   arbitrary points of the chain;
//! * a **fixed JOIN-barrier genealogy** (fusable run, JOIN of two
//!   tables, fusable run on the joined result).
//!
//! Both run warm and cold (snapshot reuse toggled per case) at parallel
//! widths {1, 2, 4}, with occasional `MATERIALIZE` relocations (which
//! must drop cached fused chains — their hop structure follows the
//! storage cases).
//!
//! The fusion knob is process-global, so every case serializes on one
//! mutex and scopes the knob around each database's operations.

use inverda_core::Inverda;
use inverda_datalog::fusion;
use inverda_storage::{Expr, Key, Value};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes cases across the (parallel) test harness threads: the
/// fusion knob and the worker width are process-global.
static GLOBAL: Mutex<()> = Mutex::new(());

/// Run `f` with the fusion override pinned to `on`, restoring the
/// environment-driven default afterwards.
fn with_fusion<T>(on: bool, f: impl FnOnce() -> T) -> T {
    fusion::set_enabled(Some(on));
    let out = f();
    fusion::set_enabled(None);
    out
}

/// A randomly generated logical statement. `head` selects between the
/// chain's source version and its newest version.
#[derive(Debug, Clone)]
enum Op {
    Insert {
        head: bool,
        vals: Vec<i64>,
    },
    Update {
        head: bool,
        slot: usize,
        vals: Vec<i64>,
    },
    Delete {
        head: bool,
        slot: usize,
    },
    /// Column-seeded point query (`col = value`) — drives the seeded
    /// pushdown probe through the fused chain when cold.
    Query {
        head: bool,
        col: usize,
        val: i64,
    },
    Materialize {
        version: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<bool>(), prop::collection::vec(0i64..6, 4..5))
            .prop_map(|(head, vals)| Op::Insert { head, vals }),
        (
            any::<bool>(),
            0usize..12,
            prop::collection::vec(0i64..6, 4..5)
        )
            .prop_map(|(head, slot, vals)| Op::Update { head, slot, vals }),
        (any::<bool>(), 0usize..12).prop_map(|(head, slot)| Op::Delete { head, slot }),
        (any::<bool>(), 0usize..4, 0i64..6).prop_map(|(head, col, val)| Op::Query {
            head,
            col,
            val
        }),
        (0usize..8).prop_map(|version| Op::Materialize { version }),
    ]
}

/// Build a random genealogy chain from hop selectors. Returns the BiDEL
/// script, the version names, and the (version, table) write targets.
///
/// The chain starts at `G0.T0(a, b, c)` and applies one SMO per hop:
/// fusable column-level hops (ADD/DROP/RENAME COLUMN, RENAME TABLE) mixed
/// with SPLIT and FK-DECOMPOSE barriers. Column bookkeeping only ever
/// touches the *last* column, so `a` (the split-condition column) always
/// survives, and decomposing the last column keeps the visible column
/// order unchanged (the engine re-exposes the fk column at the end).
fn build_chain(hops: &[u8]) -> (String, Vec<String>, (String, String)) {
    let mut script = String::from("CREATE SCHEMA VERSION G0 WITH CREATE TABLE T0(a, b, c);");
    let mut versions = vec!["G0".to_string()];
    let mut table = "T0".to_string();
    let mut cols: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
    for (i, sel) in hops.iter().enumerate() {
        let i = i + 1;
        // Guarded choices fall back to ADD COLUMN (always legal).
        let smo = match sel % 6 {
            1 if cols.len() > 2 => {
                let col = cols.pop().expect("guarded");
                format!("DROP COLUMN {col} FROM {table} DEFAULT 0")
            }
            2 if cols.len() > 1 => {
                let col = cols.pop().expect("guarded");
                let new = format!("{col}r{i}");
                let smo = format!("RENAME COLUMN {col} IN {table} TO {new}");
                cols.push(new);
                smo
            }
            3 => {
                let new = format!("T{i}");
                let smo = format!("RENAME TABLE {table} INTO {new}");
                table = new;
                smo
            }
            4 => {
                let new = format!("S{i}");
                let smo = format!("SPLIT TABLE {table} INTO {new} WITH a < 3");
                table = new;
                smo
            }
            5 if cols.len() > 2 => {
                let fk = cols.last().expect("guarded").clone();
                let kept = cols[..cols.len() - 1].join(", ");
                format!(
                    "DECOMPOSE TABLE {table} INTO {table}({kept}), F{i}({fk}) ON FOREIGN KEY {fk}"
                )
            }
            _ => {
                let col = format!("x{i}");
                let smo = format!("ADD COLUMN {col} AS 0 INTO {table}");
                cols.push(col);
                smo
            }
        };
        let v = format!("G{i}");
        script.push_str(&format!(
            " CREATE SCHEMA VERSION {v} FROM {} WITH {smo};",
            versions.last().expect("non-empty")
        ));
        versions.push(v);
    }
    let head = (versions.last().expect("non-empty").clone(), table);
    (script, versions, head)
}

/// A fusable run, a JOIN barrier, then another fusable run on the joined
/// table — fused segments must stop at (and restart after) the JOIN.
const JOIN_SCRIPT: &str = "CREATE SCHEMA VERSION G0 WITH \
       CREATE TABLE T0(a, b); CREATE TABLE Q(c, d); \
     CREATE SCHEMA VERSION G1 FROM G0 WITH ADD COLUMN x1 AS 0 INTO T0; \
     CREATE SCHEMA VERSION G2 FROM G1 WITH RENAME COLUMN x1 IN T0 TO y; \
     CREATE SCHEMA VERSION G3 FROM G2 WITH JOIN TABLE T0, Q INTO R ON PK; \
     CREATE SCHEMA VERSION G4 FROM G3 WITH ADD COLUMN z AS 0 INTO R; \
     CREATE SCHEMA VERSION G5 FROM G4 WITH RENAME TABLE R INTO Rx;";

/// One database pair under a fixed script: `fused` evaluates with chain
/// fusion on, `plain` with fusion off; every op runs on both in lockstep.
struct Harness {
    fused: Inverda,
    plain: Inverda,
    versions: Vec<String>,
    source: (String, String),
    head: (String, String),
    /// Keys minted so far (identical in both databases by construction).
    keys: Vec<Key>,
}

impl Harness {
    fn new(
        script: &str,
        versions: Vec<String>,
        source: (String, String),
        head: (String, String),
        cold: bool,
    ) -> Self {
        let fused = with_fusion(true, || {
            let db = Inverda::new();
            db.execute(script).expect("script");
            db
        });
        let plain = with_fusion(false, || {
            let db = Inverda::new();
            db.execute(script).expect("script");
            db
        });
        fused.set_snapshot_reuse(!cold);
        plain.set_snapshot_reuse(!cold);
        Harness {
            fused,
            plain,
            versions,
            source,
            head,
            keys: Vec::new(),
        }
    }

    fn target(&self, head: bool) -> (&str, &str) {
        let (v, t) = if head { &self.head } else { &self.source };
        (v, t)
    }

    /// Build a row for `version.table` from the generated values, sized to
    /// the table's current arity. Column 0 (`a`, the split-condition
    /// column) carries a small integer; the rest carry few-valued text so
    /// FK-DECOMPOSE generators deduplicate and reuse minted ids.
    fn row(&self, version: &str, table: &str, vals: &[i64]) -> Vec<Value> {
        let cols = self.fused.columns_of(version, table).expect("columns");
        (0..cols.len())
            .map(|j| {
                let v = vals[j % vals.len()];
                if j == 0 {
                    Value::Int(v)
                } else {
                    Value::text(format!("p{j}v{}", v % 3))
                }
            })
            .collect()
    }

    /// Visible state plus id-minting state of one database, as text.
    /// Reachable corners of minting genealogies can fail a scan with a
    /// clean error — recorded as text, so both sides must fail alike.
    fn state(db: &Inverda) -> String {
        let mut out = String::new();
        for v in db.versions() {
            let mut tables = db.tables_of(&v).expect("tables");
            tables.sort();
            for t in tables {
                match db.scan(&v, &t) {
                    Ok(rel) => out.push_str(&format!("{v}.{t}:\n{rel}")),
                    Err(e) => out.push_str(&format!("{v}.{t}: error {e:?}\n")),
                }
            }
        }
        out.push_str(&db.debug_registry());
        out.push_str(&format!("key_seq={}", db.debug_key_seq()));
        out
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Insert { head, vals } => {
                let (v, t) = self.target(*head);
                let row = self.row(v, t, vals);
                let rf = with_fusion(true, || self.fused.insert(v, t, row.clone()));
                let rp = with_fusion(false, || self.plain.insert(v, t, row));
                match (rf, rp) {
                    (Ok(kf), Ok(kp)) => {
                        assert_eq!(kf, kp, "key sequences must stay in lockstep");
                        self.keys.push(kf);
                    }
                    (rf, rp) => assert_eq!(
                        rf.is_ok(),
                        rp.is_ok(),
                        "insert outcome diverged: {rf:?} vs {rp:?}"
                    ),
                }
            }
            Op::Update { head, slot, vals } => {
                if self.keys.is_empty() {
                    return;
                }
                let key = self.keys[slot % self.keys.len()];
                let (v, t) = self.target(*head);
                let row = self.row(v, t, vals);
                let rf = with_fusion(true, || self.fused.update(v, t, key, row.clone()));
                let rp = with_fusion(false, || self.plain.update(v, t, key, row));
                assert_eq!(
                    rf.is_ok(),
                    rp.is_ok(),
                    "update outcome diverged: {rf:?} vs {rp:?}"
                );
            }
            Op::Delete { head, slot } => {
                if self.keys.is_empty() {
                    return;
                }
                let key = self.keys[slot % self.keys.len()];
                let (v, t) = self.target(*head);
                let rf = with_fusion(true, || self.fused.delete(v, t, key));
                let rp = with_fusion(false, || self.plain.delete(v, t, key));
                assert_eq!(
                    rf.is_ok(),
                    rp.is_ok(),
                    "delete outcome diverged: {rf:?} vs {rp:?}"
                );
            }
            Op::Query { head, col, val } => {
                let (v, t) = self.target(*head);
                let cols = self.fused.columns_of(v, t).expect("columns");
                let idx = *col % cols.len();
                let col = &cols[idx];
                let probe = if idx == 0 {
                    Expr::lit(*val)
                } else {
                    // Matches the text payload written into position `idx`
                    // (for a third of the generated values).
                    Expr::lit(format!("p{idx}v{}", val % 3))
                };
                let filter = Expr::col(col.as_str()).eq(probe);
                let run = |db: &Inverda| {
                    db.query(v, t)
                        .filter(filter.clone())
                        .collect()
                        .map(|rel| rel.to_string())
                };
                let rf = with_fusion(true, || run(&self.fused));
                let rp = with_fusion(false, || run(&self.plain));
                assert_eq!(rf, rp, "seeded query diverged on {v}.{t} {col}");
            }
            Op::Materialize { version } => {
                // Reachable corners can fail a migration with a clean
                // KeyConflict; both sides must agree, and a failed
                // migration leaves both databases untouched.
                let v = &self.versions[*version % self.versions.len()];
                let rf = with_fusion(true, || self.fused.materialize(&[v.to_string()]));
                let rp = with_fusion(false, || self.plain.materialize(&[v.to_string()]));
                assert_eq!(
                    rf.is_ok(),
                    rp.is_ok(),
                    "materialize outcome diverged: {rf:?} vs {rp:?}"
                );
            }
        }
    }

    fn check(&self, context: &str) {
        let fused = with_fusion(true, || Self::state(&self.fused));
        let plain = with_fusion(false, || Self::state(&self.plain));
        assert_eq!(
            fused, plain,
            "fused evaluation diverged from hop-by-hop after {context}"
        );
    }
}

proptest! {
    /// Random genealogy chains (fusable runs broken by SPLIT and
    /// FK-DECOMPOSE barriers), random writes/queries through the source
    /// and the chain head, occasional migrations — fused ≡ unfused after
    /// every op, warm and cold, at widths {1, 2, 4}.
    #[test]
    fn fused_equals_hop_by_hop_random_chains(
        hops in prop::collection::vec(0u8..6, 2..8),
        ops in prop::collection::vec(op_strategy(), 1..12),
        tsel in 0usize..3,
        cold in any::<bool>(),
        batch in any::<bool>(),
    ) {
        let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        inverda_core::set_threads(Some([1usize, 2, 4][tsel]));
        inverda_datalog::batch::set_enabled(Some(batch));
        inverda_datalog::tuning::set_batch_min_keys(Some(1));
        let (script, versions, head) = build_chain(&hops);
        let source = ("G0".to_string(), "T0".to_string());
        let mut h = Harness::new(&script, versions, source, head, cold);
        for (i, op) in ops.iter().enumerate() {
            h.apply(op);
            h.check(&format!("op {i}: {op:?}"));
        }
    }

    /// The JOIN-barrier genealogy: fused segments must stop at the JOIN
    /// hop and restart beyond it.
    #[test]
    fn fused_equals_hop_by_hop_join_barrier(
        ops in prop::collection::vec(op_strategy(), 1..12),
        tsel in 0usize..3,
        cold in any::<bool>(),
        batch in any::<bool>(),
    ) {
        let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        inverda_core::set_threads(Some([1usize, 2, 4][tsel]));
        inverda_datalog::batch::set_enabled(Some(batch));
        inverda_datalog::tuning::set_batch_min_keys(Some(1));
        let versions = (0..6).map(|i| format!("G{i}")).collect();
        let mut h = Harness::new(
            JOIN_SCRIPT,
            versions,
            ("G0".to_string(), "T0".to_string()),
            ("G5".to_string(), "Rx".to_string()),
            cold,
        );
        for (i, op) in ops.iter().enumerate() {
            h.apply(op);
            h.check(&format!("op {i}: {op:?}"));
        }
    }
}

/// Fusion must actually engage on a fusable chain — otherwise the
/// differential tests above prove nothing. A pure column-level chain
/// read cold from the head must cache one fused chain spanning every
/// hop, and `MATERIALIZE` must drop it (the hop structure follows the
/// storage cases).
#[test]
fn fusion_engages_and_materialize_invalidates() {
    let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    with_fusion(true, || {
        let (script, _, (head_v, head_t)) = build_chain(&[0, 2, 3, 0, 2]);
        let db = Inverda::new();
        db.execute(&script).unwrap();
        db.insert(
            "G0",
            "T0",
            vec![Value::Int(1), Value::text("b0"), Value::text("c0")],
        )
        .unwrap();
        assert_eq!(db.fused_chain_stats(), (0, 0), "no reads yet");
        let rel = db.scan(&head_v, &head_t).unwrap();
        assert_eq!(rel.len(), 1);
        let (chains, deepest) = db.fused_chain_stats();
        assert!(chains >= 1, "no fused chain was cached");
        assert!(
            deepest >= 4,
            "chain was not fused across the hops: {deepest}"
        );
        db.execute(&format!("MATERIALIZE '{head_v}';")).unwrap();
        assert_eq!(
            db.fused_chain_stats(),
            (0, 0),
            "MATERIALIZE must drop cached fused chains"
        );
    });
}
