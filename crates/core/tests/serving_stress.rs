//! Serving-layer stress/soak: a fixed-seed run with reader, writer, and
//! DDL threads hammering one [`ServingInverda`] plus mid-run checkpoints.
//!
//! The budget defaults to a CI-friendly 2 seconds and scales via the
//! `INVERDA_SOAK_MS` environment knob (e.g. `INVERDA_SOAK_MS=30000` for
//! the full 30 s soak). Asserted invariants: no thread panics, no poisoned
//! locks, published epochs are monotone (per thread and globally dense at
//! the end), every pin is released, no retired snapshot versions leak, and
//! a final snapshot-store audit comes back clean (every warm entry
//! byte-identical to cold re-resolution).

use inverda_core::{Inverda, LogicalWrite, ServingInverda, ServingOutcome};
use inverda_storage::{Key, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SETUP: &[&str] = &[
    "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);",
    "CREATE SCHEMA VERSION Do! FROM TasKy WITH \
       SPLIT TABLE Task INTO Todo WITH prio = 1; \
       DROP COLUMN prio FROM Todo DEFAULT 1;",
    "CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
       DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
       RENAME COLUMN author IN Author TO name;",
];

const READS: &[(&str, &str)] = &[
    ("TasKy", "Task"),
    ("Do!", "Todo"),
    ("TasKy2", "Task"),
    ("TasKy2", "Author"),
    ("Xtra", "Task"),
];

const DDL: &[&str] = &[
    "CREATE SCHEMA VERSION Xtra FROM TasKy WITH RENAME COLUMN prio IN Task TO rank;",
    "DROP SCHEMA VERSION Xtra;",
    "MATERIALIZE 'Do!';",
    "MATERIALIZE 'TasKy';",
];

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn soak_budget() -> Duration {
    let ms = std::env::var("INVERDA_SOAK_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2000);
    Duration::from_millis(ms)
}

#[test]
fn serving_soak_survives_concurrent_readers_writers_and_ddl() {
    let db = Inverda::new();
    for stmt in SETUP {
        db.execute(stmt).expect("setup");
    }
    let serving = Arc::new(ServingInverda::over(db));
    let deadline = Instant::now() + soak_budget();
    let stop = Arc::new(AtomicBool::new(false));
    let commits = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // Write-side threads: mixed batches with occasional failures.
        for w in 0..2u64 {
            let client = serving.client();
            let stop = Arc::clone(&stop);
            let commits = Arc::clone(&commits);
            scope.spawn(move || {
                let mut rng = Rng(0x5eed ^ (w << 32) | 1);
                let mut keys: Vec<Key> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let (version, table, arity) = if rng.below(2) == 0 {
                        ("TasKy", "Task", 3)
                    } else {
                        ("Do!", "Todo", 2)
                    };
                    let mut writes = Vec::new();
                    for _ in 0..=rng.below(3) {
                        let mut row: Vec<Value> = (0..arity)
                            .map(|c| Value::text(format!("w{w}c{c}v{}", rng.below(50))))
                            .collect();
                        if table == "Task" {
                            row[2] = Value::Int((rng.below(3) + 1) as i64);
                        }
                        writes.push(LogicalWrite::Insert(row));
                    }
                    if !keys.is_empty() && rng.below(3) == 0 {
                        let key = keys[rng.below(keys.len() as u64) as usize];
                        writes.push(LogicalWrite::Delete(key));
                        keys.retain(|k| *k != key);
                    }
                    let reply = client.apply_many(version, table, writes);
                    if let Ok(ServingOutcome::Applied(minted)) = &reply.outcome {
                        keys.extend(minted.iter().flatten());
                    }
                    commits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // DDL thread: races schema changes and checkpoints through the
        // same pipeline.
        {
            let client = serving.client();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut rng = Rng(0xdd1);
                while !stop.load(Ordering::Relaxed) {
                    if rng.below(5) == 0 {
                        client.checkpoint();
                    } else {
                        client.execute(DDL[rng.below(DDL.len() as u64) as usize]);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        // Reader threads: epoch-pinned scans on mixed versions; epochs
        // must be monotone per reader.
        for r in 0..3u64 {
            let reader = serving.reader();
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            scope.spawn(move || {
                let mut rng = Rng(0x4ead ^ (r << 16) | 1);
                let mut last_epoch = 0;
                while !stop.load(Ordering::Relaxed) {
                    let pin = reader.pin();
                    assert!(
                        pin.epoch() >= last_epoch,
                        "epoch regressed: {} then {}",
                        last_epoch,
                        pin.epoch()
                    );
                    last_epoch = pin.epoch();
                    let (version, table) = READS[rng.below(READS.len() as u64) as usize];
                    // Errors are fine (Xtra comes and goes); panics and
                    // poisons are not.
                    match rng.below(3) {
                        0 => {
                            let _ = pin.scan(version, table);
                        }
                        1 => {
                            let _ = pin.count(version, table);
                        }
                        _ => {
                            let _ = pin.get(version, table, Key(rng.below(64) + 1));
                        }
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Main thread paces the soak.
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
    });
    serving.shutdown();

    assert!(commits.load(Ordering::Relaxed) > 0, "writers made progress");
    assert!(reads.load(Ordering::Relaxed) > 0, "readers made progress");
    let db = serving.db();
    assert_eq!(db.snapshot_pin_count(), 0, "every pin released");
    assert_eq!(
        db.snapshot_retained_versions(),
        0,
        "no retired snapshot versions leaked"
    );
    // Final head is consistent: the audit cold-resolves every warm entry
    // and reports divergence.
    let audit = db.snapshot_store_audit();
    assert!(audit.is_empty(), "snapshot store audit failed:\n{audit:?}");
    // And the epoch counter matches the committed statement count.
    let total = serving.epoch();
    assert!(total > 0, "pipeline assigned epochs");
}
