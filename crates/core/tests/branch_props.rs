//! Differential testing of the branching layer (`inverda_core::branch`).
//!
//! The standing invariant of the branch subsystem is *replay
//! equivalence*: a branch's visible state — every version's rows
//! (including tuple identifiers and skolem-minted ids), the registry
//! dump, and the key sequence — must be byte-identical to a **fresh
//! single-branch engine** replaying exactly that branch's stamped
//! operation history. Forks inherit the parent's history; a merge appends
//! the source's operations rewritten to be self-contained on the
//! destination; so the check holds across arbitrary fork/write/DDL/merge
//! interleavings, and comparing the (warm, cache-carrying) live branch
//! against the (cold, cache-free) oracle doubles as the warm ≡ cold
//! proof.
//!
//! Covered here:
//! * random fork trees with per-branch write/DDL interleavings, at
//!   parallel widths {1, 2, 4}, warm and cold, fusion and batch on/off —
//!   every branch ≡ its history replayed;
//! * random **disjoint** divergent writes on two forks merged back into
//!   `main` — the merge must commit, union the content, and leave `main`
//!   ≡ its (canonical linear order) history;
//! * deterministic conflict/fast-forward behavior, and the cache-scoping
//!   regression: `MATERIALIZE` on one branch must not cold-start a
//!   sibling's fused chains or snapshot entries.
//!
//! The worker width / fusion / batch knobs are process-global, so every
//! case serializes on one mutex (same idiom as `fusion_props.rs`).

use inverda_core::branch::BranchOp;
use inverda_core::{Branch, BranchingInverda, CoreError, HistoryEntry, Inverda, MAIN_BRANCH};
use inverda_datalog::fusion;
use inverda_storage::{Key, Value};
use proptest::prelude::*;
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

/// Pin the process-global evaluation knobs for one case.
fn pin_knobs(tsel: usize, fused: bool, batch: bool) {
    inverda_core::set_threads(Some([1usize, 2, 4][tsel]));
    fusion::set_enabled(Some(fused));
    inverda_datalog::batch::set_enabled(Some(batch));
    inverda_datalog::tuning::set_batch_min_keys(Some(1));
}

fn unpin_knobs() {
    fusion::set_enabled(None);
    inverda_datalog::batch::set_enabled(None);
    inverda_datalog::tuning::set_batch_min_keys(None);
}

/// Visible state plus id-minting state of one engine, as text (the byte
/// equality oracle of every test here). Reachable corners of minting
/// genealogies can fail a scan with a clean error — recorded as text, so
/// both sides must fail alike.
fn state(db: &Inverda) -> String {
    let mut out = String::new();
    for v in db.versions() {
        let mut tables = db.tables_of(&v).expect("tables");
        tables.sort();
        for t in tables {
            match db.scan(&v, &t) {
                Ok(rel) => out.push_str(&format!("{v}.{t}:\n{rel}")),
                Err(e) => out.push_str(&format!("{v}.{t}: error {e:?}\n")),
            }
        }
    }
    out.push_str(&db.debug_registry());
    out.push_str(&format!("key_seq={}", db.debug_key_seq()));
    out
}

/// The oracle: a fresh single-branch engine replaying `history` — each
/// entry's outcome must match what the live branch recorded.
fn replay(history: &[HistoryEntry], cold: bool) -> Inverda {
    let db = Inverda::new_in_memory();
    db.set_snapshot_reuse(!cold);
    for e in history {
        let ok = match &e.op {
            BranchOp::Execute(script) => db.execute(script).is_ok(),
            BranchOp::ApplyMany {
                version,
                table,
                writes,
            } => db.apply_many(version, table, writes.clone()).is_ok(),
        };
        assert_eq!(
            ok, e.ok,
            "replayed outcome diverged from recorded outcome at stamp {}: {:?}",
            e.stamp, e.op
        );
    }
    db
}

fn assert_branch_equals_replay(branch: &Branch, cold: bool, context: &str) {
    let live = state(&branch.engine().expect("engine"));
    let oracle = replay(&branch.history().expect("history"), cold);
    assert_eq!(
        live,
        state(&oracle),
        "branch '{}' diverged from its history replay ({context})",
        branch.name()
    );
}

// ---------------------------------------------------------------------
// Random fork trees with per-branch write/DDL interleavings.
// ---------------------------------------------------------------------

/// One generated action against the branch family. Branch/slot selectors
/// are reduced modulo the live population when applied.
#[derive(Debug, Clone)]
enum Action {
    /// Fork a new branch off an existing one.
    Fork { parent: usize },
    /// CREATE SCHEMA VERSION on a branch, one SMO ahead of its newest.
    Ddl { branch: usize, hop: u8 },
    /// Insert through a branch's newest (or base) version.
    Insert {
        branch: usize,
        head: bool,
        vals: Vec<i64>,
    },
    /// Update a previously minted key on the branch.
    Update {
        branch: usize,
        head: bool,
        slot: usize,
        vals: Vec<i64>,
    },
    /// Delete a previously minted key on the branch.
    Delete { branch: usize, slot: usize },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..4).prop_map(|parent| Action::Fork { parent }),
        (0usize..4, 0u8..4).prop_map(|(branch, hop)| Action::Ddl { branch, hop }),
        (
            0usize..4,
            any::<bool>(),
            prop::collection::vec(0i64..6, 3..4)
        )
            .prop_map(|(branch, head, vals)| Action::Insert { branch, head, vals }),
        (
            0usize..4,
            any::<bool>(),
            prop::collection::vec(0i64..6, 3..4)
        )
            .prop_map(|(branch, head, vals)| Action::Insert { branch, head, vals }),
        (
            0usize..4,
            any::<bool>(),
            0usize..10,
            prop::collection::vec(0i64..6, 3..4)
        )
            .prop_map(|(branch, head, slot, vals)| Action::Update {
                branch,
                head,
                slot,
                vals
            }),
        (0usize..4, 0usize..10).prop_map(|(branch, slot)| Action::Delete { branch, slot }),
    ]
}

/// Test-side model of one branch: its handle plus enough genealogy
/// bookkeeping to generate valid statements.
struct Model {
    branch: Branch,
    /// Newest schema version and its (tracked) table + columns.
    version: String,
    table: String,
    cols: Vec<String>,
    /// Keys minted through this lineage (inherited on fork).
    keys: Vec<Key>,
}

fn row_for(db: &Inverda, version: &str, table: &str, vals: &[i64]) -> Vec<Value> {
    let cols = db.columns_of(version, table).expect("columns");
    (0..cols.len())
        .map(|j| {
            let v = vals[j % vals.len()];
            if j == 0 {
                Value::Int(v)
            } else {
                Value::text(format!("p{j}v{}", v % 3))
            }
        })
        .collect()
}

fn apply_action(manager: &BranchingInverda, models: &mut Vec<Model>, i: usize, action: &Action) {
    match action {
        Action::Fork { parent } => {
            let parent = &models[parent % models.len()];
            let name = format!("b{i}");
            let branch = manager
                .branch_from(parent.branch.name(), &name)
                .expect("fork");
            let model = Model {
                branch,
                version: parent.version.clone(),
                table: parent.table.clone(),
                cols: parent.cols.clone(),
                keys: parent.keys.clone(),
            };
            models.push(model);
        }
        Action::Ddl { branch, hop } => {
            let idx = branch % models.len();
            let m = &mut models[idx];
            // Version names carry the branch name so sibling branches
            // never create the same version independently.
            let v = format!("V_{}_{i}", m.branch.name());
            let smo = match hop % 4 {
                1 if m.cols.len() > 2 => {
                    let col = m.cols.pop().expect("guarded");
                    format!("DROP COLUMN {col} FROM {} DEFAULT 0", m.table)
                }
                2 => {
                    let new = format!("R{i}");
                    let smo = format!("RENAME TABLE {} INTO {new}", m.table);
                    m.table = new;
                    smo
                }
                3 => {
                    let new = format!("S{i}");
                    let smo = format!("SPLIT TABLE {} INTO {new} WITH a < 3", m.table);
                    m.table = new;
                    smo
                }
                _ => {
                    let col = format!("x{i}");
                    let smo = format!("ADD COLUMN {col} AS 0 INTO {}", m.table);
                    m.cols.push(col);
                    smo
                }
            };
            m.branch
                .execute(&format!(
                    "CREATE SCHEMA VERSION {v} FROM {} WITH {smo};",
                    m.version
                ))
                .expect("generated DDL is valid");
            m.version = v;
        }
        Action::Insert { branch, head, vals } => {
            let idx = branch % models.len();
            let m = &mut models[idx];
            let (v, t) = if *head {
                (m.version.clone(), m.table.clone())
            } else {
                ("G0".to_string(), "T0".to_string())
            };
            let row = row_for(&m.branch.engine().expect("engine"), &v, &t, vals);
            let key = m.branch.insert(&v, &t, row).expect("insert");
            m.keys.push(key);
        }
        Action::Update {
            branch,
            head,
            slot,
            vals,
        } => {
            let m = &models[branch % models.len()];
            if m.keys.is_empty() {
                return;
            }
            let key = m.keys[slot % m.keys.len()];
            let (v, t) = if *head {
                (m.version.clone(), m.table.clone())
            } else {
                ("G0".to_string(), "T0".to_string())
            };
            let row = row_for(&m.branch.engine().expect("engine"), &v, &t, vals);
            // Updating a key another lineage deleted (or that a SPLIT
            // filters out of the head) fails cleanly; the oracle must
            // fail alike, which `replay` asserts via the ok flags.
            let _ = m.branch.update(&v, &t, key, row);
        }
        Action::Delete { branch, slot } => {
            let m = &models[branch % models.len()];
            if m.keys.is_empty() {
                return;
            }
            let key = m.keys[slot % m.keys.len()];
            let _ = m.branch.delete("G0", "T0", key);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fork trees + per-branch write/DDL interleavings: every
    /// branch stays byte-identical to a fresh engine replaying its
    /// history, across widths, warm/cold, fusion/batch on/off.
    #[test]
    fn every_branch_equals_its_history_replay(
        actions in prop::collection::vec(action_strategy(), 1..14),
        tsel in 0usize..3,
        cold in any::<bool>(),
        fused in any::<bool>(),
        batch in any::<bool>(),
    ) {
        let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        pin_knobs(tsel, fused, batch);
        let manager = BranchingInverda::new();
        let main = manager.main();
        main.execute("CREATE SCHEMA VERSION G0 WITH CREATE TABLE T0(a, b, c);")
            .expect("base");
        main.engine().expect("engine").set_snapshot_reuse(!cold);
        let mut models = vec![Model {
            branch: main,
            version: "G0".into(),
            table: "T0".into(),
            cols: vec!["a".into(), "b".into(), "c".into()],
            keys: Vec::new(),
        }];
        for (i, action) in actions.iter().enumerate() {
            apply_action(&manager, &mut models, i, action);
        }
        for m in &models {
            assert_branch_equals_replay(&m.branch, cold, "after all actions");
        }
        unpin_knobs();
    }

    /// Two branches fork off `main`, each makes disjoint writes (own
    /// inserts, updates/deletes of own rows only) while `main` keeps
    /// moving; both merge back. The merges must commit, `main` must stay
    /// ≡ the replay of its final (canonical linear order) history, and
    /// every surviving row payload from either side must be present.
    #[test]
    fn merge_of_disjoint_writes_is_deterministic_replay(
        a_ops in prop::collection::vec((0u8..4, prop::collection::vec(0i64..6, 3..4)), 1..6),
        b_ops in prop::collection::vec((0u8..4, prop::collection::vec(0i64..6, 3..4)), 1..6),
        main_rows in 0usize..3,
        tsel in 0usize..3,
        fused in any::<bool>(),
    ) {
        let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        pin_knobs(tsel, fused, true);
        let manager = BranchingInverda::new();
        let main = manager.main();
        main.execute("CREATE SCHEMA VERSION G0 WITH CREATE TABLE T0(a, b, c);")
            .expect("base");
        let base = main
            .insert("G0", "T0", vec![0.into(), Value::text("base"), Value::text("z")])
            .expect("base row");
        let a = manager.branch("a").expect("fork a");
        let b = manager.branch("b").expect("fork b");

        // Disjoint per-branch workloads: every payload is tagged with the
        // branch name; updates/deletes only ever touch own-minted rows.
        let mut surviving: Vec<String> = vec!["base".into()];
        let mut run = |branch: &Branch, tag: &str, ops: &[(u8, Vec<i64>)]| {
            let mut own: Vec<(Key, String)> = Vec::new();
            for (n, (sel, vals)) in ops.iter().enumerate() {
                match sel % 4 {
                    1 if !own.is_empty() => {
                        let slot = vals[0] as usize % own.len();
                        let (key, payload) = own[slot].clone();
                        let row = vec![vals[1 % vals.len()].into(), Value::text(payload), Value::text("u")];
                        branch.update("G0", "T0", key, row).expect("own update");
                    }
                    2 if !own.is_empty() => {
                        let slot = vals[0] as usize % own.len();
                        let (key, _) = own.remove(slot);
                        branch.delete("G0", "T0", key).expect("own delete");
                    }
                    _ => {
                        let payload = format!("{tag}-{n}");
                        let row = vec![vals[0].into(), Value::text(payload.clone()), Value::text("i")];
                        let key = branch.insert("G0", "T0", row).expect("insert");
                        own.push((key, payload));
                    }
                }
            }
            surviving.extend(own.into_iter().map(|(_, p)| p));
        };
        run(&a, "a", &a_ops);
        run(&b, "b", &b_ops);
        for n in 0..main_rows {
            let payload = format!("m-{n}");
            main.insert("G0", "T0", vec![1.into(), Value::text(payload.clone()), Value::text("i")])
                .expect("main insert");
            surviving.push(payload);
        }

        manager.merge("a", MAIN_BRANCH).expect("disjoint merge of a");
        manager.merge("b", MAIN_BRANCH).expect("disjoint merge of b");

        assert_branch_equals_replay(&main, false, "after merges");
        let rel = main.scan("G0", "T0").expect("scan");
        assert!(rel.get(base).is_some(), "base row survives");
        assert_eq!(rel.len(), surviving.len(), "merged row count is the union");
        let rendered = rel.to_string();
        for payload in &surviving {
            assert!(
                rendered.contains(payload.as_str()),
                "payload {payload} missing after merge:\n{rendered}"
            );
        }
        unpin_knobs();
    }
}

// ---------------------------------------------------------------------
// Deterministic behavior tests.
// ---------------------------------------------------------------------

fn base_manager() -> (BranchingInverda, Branch, Key) {
    let manager = BranchingInverda::new();
    let main = manager.main();
    main.execute("CREATE SCHEMA VERSION G0 WITH CREATE TABLE T0(a, b, c);")
        .expect("base");
    let key = main
        .insert(
            "G0",
            "T0",
            vec![1.into(), Value::text("base"), Value::text("z")],
        )
        .expect("base row");
    (manager, main, key)
}

#[test]
fn conflicting_writes_surface_as_typed_report_and_leave_dst_untouched() {
    let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let (manager, main, key) = base_manager();
    let a = manager.branch("a").expect("fork a");
    let b = manager.branch("b").expect("fork b");
    a.update(
        "G0",
        "T0",
        key,
        vec![1.into(), Value::text("from-a"), Value::text("z")],
    )
    .expect("a update");
    b.update(
        "G0",
        "T0",
        key,
        vec![1.into(), Value::text("from-b"), Value::text("z")],
    )
    .expect("b update");
    manager
        .merge("a", MAIN_BRANCH)
        .expect("first merge is clean");
    let before = state(&main.engine().expect("engine"));
    let err = manager.merge("b", MAIN_BRANCH).expect_err("conflict");
    match err {
        CoreError::MergeConflicts(report) => {
            assert_eq!(report.src, "b");
            assert_eq!(report.dst, MAIN_BRANCH);
            assert_eq!(report.conflicts.len(), 1);
            let rendered = report.to_string();
            assert!(rendered.contains("changed on both sides"), "{rendered}");
        }
        other => panic!("expected MergeConflicts, got {other:?}"),
    }
    assert_eq!(
        before,
        state(&main.engine().expect("engine")),
        "a refused merge must leave the destination untouched"
    );
    // Both sides deleting the same row is NOT a conflict.
    let c = manager.branch_from(MAIN_BRANCH, "c").expect("fork c");
    c.delete("G0", "T0", key).expect("c delete");
    main.delete("G0", "T0", key).expect("main delete");
    manager
        .merge("c", MAIN_BRANCH)
        .expect("both-sides delete merges cleanly");
    assert_branch_equals_replay(&main, false, "after both-sides-delete merge");
}

#[test]
fn same_version_created_on_both_sides_is_a_conflict() {
    let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let (manager, _main, _key) = base_manager();
    let a = manager.branch("a").expect("fork a");
    let b = manager.branch("b").expect("fork b");
    let ddl = "CREATE SCHEMA VERSION G1 FROM G0 WITH ADD COLUMN d AS 0 INTO T0;";
    a.execute(ddl).expect("a ddl");
    b.execute(ddl).expect("b ddl");
    manager
        .merge("a", MAIN_BRANCH)
        .expect("first merge is clean");
    let err = manager
        .merge("b", MAIN_BRANCH)
        .expect_err("version conflict");
    match err {
        CoreError::MergeConflicts(report) => {
            assert!(report.conflicts.iter().any(
                |c| matches!(c, inverda_core::MergeConflict::Version { name } if name == "G1")
            ));
        }
        other => panic!("expected MergeConflicts, got {other:?}"),
    }
}

#[test]
fn fast_forward_advances_only_undiverged_branches() {
    let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let (manager, main, _key) = base_manager();
    let feature = manager.branch("feature").expect("fork");
    feature
        .insert(
            "G0",
            "T0",
            vec![2.into(), Value::text("feat"), Value::text("y")],
        )
        .expect("feature insert");
    // main has not moved since the fork: fast-forward applies.
    let advanced = manager.fast_forward("feature", MAIN_BRANCH).expect("ff");
    assert_eq!(advanced, 1);
    let diff = manager.diff("feature", MAIN_BRANCH).expect("diff");
    assert!(
        diff.is_empty(),
        "fast-forwarded branches are identical: {diff:?}"
    );
    assert_branch_equals_replay(&main, false, "after fast-forward");
    // Diverge main; fast-forward must now refuse.
    main.insert(
        "G0",
        "T0",
        vec![3.into(), Value::text("trunk"), Value::text("x")],
    )
    .expect("main insert");
    feature
        .insert(
            "G0",
            "T0",
            vec![4.into(), Value::text("feat2"), Value::text("w")],
        )
        .expect("feature insert 2");
    let err = manager
        .fast_forward("feature", MAIN_BRANCH)
        .expect_err("diverged");
    assert!(
        matches!(err, CoreError::CannotFastForward { .. }),
        "{err:?}"
    );
}

#[test]
fn diff_reports_row_genealogy_and_registry_divergence() {
    let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let (manager, main, key) = base_manager();
    let a = manager.branch("a").expect("fork");
    assert!(manager.diff("a", MAIN_BRANCH).expect("diff").is_empty());
    a.execute("CREATE SCHEMA VERSION GA FROM G0 WITH ADD COLUMN d AS 0 INTO T0;")
        .expect("a ddl");
    a.update(
        "G0",
        "T0",
        key,
        vec![1.into(), Value::text("changed"), Value::text("z")],
    )
    .expect("a update");
    main.insert(
        "G0",
        "T0",
        vec![5.into(), Value::text("trunk-only"), Value::text("q")],
    )
    .expect("main insert");
    let diff = manager.diff("a", MAIN_BRANCH).expect("diff");
    assert_eq!(diff.only_in_a, vec!["GA".to_string()]);
    assert!(diff.only_in_b.is_empty());
    assert_eq!(diff.a_ahead, 2);
    assert_eq!(diff.b_ahead, 1);
    let t0 = diff
        .tables
        .iter()
        .find(|t| t.version == "G0" && t.table == "T0")
        .expect("T0 delta present");
    // a → main: a's update appears as an update, main's extra row as an
    // insert.
    assert_eq!(t0.delta.updates.len(), 1);
    assert_eq!(t0.delta.inserts.len(), 1);
    assert!(t0.delta.deletes.is_empty());
}

#[test]
fn branch_create_is_metadata_only_and_isolated() {
    let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let (manager, main, key) = base_manager();
    let a = manager.branch("a").expect("fork");
    // Fork shares the physical tables copy-on-write: no rows were copied
    // (both engines see the same Arc'd relation until either writes).
    a.update(
        "G0",
        "T0",
        key,
        vec![1.into(), Value::text("a-side"), Value::text("z")],
    )
    .expect("a update");
    let main_row = main.get("G0", "T0", key).expect("get").expect("row");
    let a_row = a.get("G0", "T0", key).expect("get").expect("row");
    assert_eq!(main_row[1], Value::text("base"), "main is undisturbed");
    assert_eq!(a_row[1], Value::text("a-side"));
    assert_eq!(
        manager.branch_names(),
        vec!["a".to_string(), MAIN_BRANCH.to_string()]
    );
    manager.drop_branch("a").expect("drop");
    assert!(manager.get("a").is_err());
    assert!(matches!(
        manager.drop_branch(MAIN_BRANCH),
        Err(CoreError::ProtectedBranch { .. })
    ));
}

/// The cache-scoping regression (branch-scoped invalidation): a
/// `MATERIALIZE` on one branch must clear only that branch's fused
/// chains and snapshot entries — a sibling's warm caches survive and its
/// visible state is untouched.
#[test]
fn materialize_on_one_branch_keeps_sibling_caches_warm() {
    let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    pin_knobs(0, true, false);
    let manager = BranchingInverda::new();
    let main = manager.main();
    main.execute(
        "CREATE SCHEMA VERSION G0 WITH CREATE TABLE T0(a, b, c); \
         CREATE SCHEMA VERSION G1 FROM G0 WITH ADD COLUMN d AS 0 INTO T0; \
         CREATE SCHEMA VERSION G2 FROM G1 WITH RENAME COLUMN d IN T0 TO e;",
    )
    .expect("chain");
    main.insert(
        "G0",
        "T0",
        vec![1.into(), Value::text("r"), Value::text("s")],
    )
    .expect("row");
    let a = manager.branch("a").expect("fork a");
    let b = manager.branch("b").expect("fork b");
    // Warm branch b: the cold scan through the two-hop chain caches a
    // fused chain and a resolved snapshot.
    let before = b.scan("G2", "T0").expect("warm scan").to_string();
    let b_eng = b.engine().expect("engine");
    let (chains, deepest) = b_eng.fused_chain_stats();
    assert!(
        chains >= 1 && deepest >= 2,
        "fusion engaged on b: {chains}/{deepest}"
    );
    let warm_before = b_eng.snapshot_stats();
    // Migrate branch a. Its own caches reset; b's survive.
    a.execute("MATERIALIZE 'G2';").expect("materialize a");
    assert_eq!(
        a.engine().expect("engine").fused_chain_stats().0,
        0,
        "a's own fused chains are cleared"
    );
    assert_eq!(
        b_eng.fused_chain_stats(),
        (chains, deepest),
        "b's fused chains survive a's MATERIALIZE"
    );
    let after = b.scan("G2", "T0").expect("rescan").to_string();
    assert_eq!(before, after, "b's visible state is untouched");
    let warm_after = b_eng.snapshot_stats();
    assert!(
        warm_after.hits > warm_before.hits,
        "b's rescan is served warm from its snapshot store \
         ({warm_before:?} -> {warm_after:?})"
    );
    assert_eq!(
        warm_after.invalidations, warm_before.invalidations,
        "no invalidation landed on b"
    );
    unpin_knobs();
}

// ---------------------------------------------------------------------
// Crash recovery: the branch log's valid prefix is the whole truth.
// ---------------------------------------------------------------------

/// A unique scratch directory under the system temp dir.
fn fresh_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "inverda-branchprops-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Copy every regular file of `src` into `dst` (branch dirs are flat).
fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).expect("create crash-copy dir");
    for entry in std::fs::read_dir(src).expect("read durable dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
        }
    }
}

/// Full-state dump of every branch of a manager, keyed by branch name.
fn snapshot_all(manager: &BranchingInverda) -> Vec<(String, String)> {
    manager
        .branch_names()
        .into_iter()
        .map(|name| {
            let engine = manager
                .get(&name)
                .expect("branch")
                .engine()
                .expect("engine");
            let dump = state(&engine);
            (name, dump)
        })
        .collect()
}

/// Drive a durable manager through its lifecycle — base DDL + writes,
/// branch-create, divergent writes, a merge, a fast-forward, a drop —
/// flushing after every step and recording `(log_len, full dump)` at each
/// boundary. Then crash at every boundary (exact cut) and *inside* the
/// record that follows it (torn cut, 3 bytes into the next frame): the
/// recovered copy must be byte-identical to the live state at that
/// boundary. This covers crashes landing during branch-create and during
/// merge: the torn record is discarded and recovery equals the replay of
/// the surviving prefix.
#[test]
fn crash_at_any_boundary_recovers_the_prefix_state() {
    let _serial = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    pin_knobs(0, true, true);
    let dir = fresh_dir("live");
    let manager =
        BranchingInverda::open_in(&dir, inverda_core::DurabilityOptions::default()).expect("open");
    let main = manager.main();

    let mut boundaries: Vec<(u64, Vec<(String, String)>)> = Vec::new();
    let mut checkpoint = |manager: &BranchingInverda| {
        manager.flush().expect("flush");
        let len = manager.log_len().expect("durable manager has a log");
        boundaries.push((len, snapshot_all(manager)));
    };

    main.execute(
        "CREATE SCHEMA VERSION G0 WITH CREATE TABLE T0(a, b, c); \
         CREATE SCHEMA VERSION G1 FROM G0 WITH SPLIT TABLE T0 INTO S0 WITH a < 3;",
    )
    .expect("base");
    let key = main
        .insert(
            "G0",
            "T0",
            vec![1.into(), Value::text("base"), Value::text("z")],
        )
        .expect("base row");
    checkpoint(&manager);

    let a = manager.branch("a").expect("fork");
    checkpoint(&manager);

    a.update(
        "G0",
        "T0",
        key,
        vec![1.into(), Value::text("a-side"), Value::text("z")],
    )
    .expect("a update");
    a.execute("CREATE SCHEMA VERSION GA FROM G1 WITH ADD COLUMN d AS 0 INTO S0;")
        .expect("a ddl");
    main.insert(
        "G0",
        "T0",
        vec![4.into(), Value::text("trunk"), Value::text("y")],
    )
    .expect("main insert");
    checkpoint(&manager);

    manager.merge("a", MAIN_BRANCH).expect("merge");
    checkpoint(&manager);

    let b = manager.branch("b").expect("fork b");
    b.insert(
        "G0",
        "T0",
        vec![2.into(), Value::text("b-row"), Value::text("x")],
    )
    .expect("b insert");
    manager.fast_forward("b", MAIN_BRANCH).expect("ff");
    manager.drop_branch("a").expect("drop");
    checkpoint(&manager);

    for (i, (len, expected)) in boundaries.iter().enumerate() {
        // Torn cuts only make sense while more log follows this boundary.
        let cuts: &[u64] = if i + 1 < boundaries.len() {
            &[0, 3]
        } else {
            &[0]
        };
        for delta in cuts {
            let scratch = fresh_dir("crash");
            copy_dir(&dir, &scratch);
            let log = scratch.join("branch-0.log");
            std::fs::OpenOptions::new()
                .write(true)
                .open(&log)
                .expect("open log copy")
                .set_len(len + delta)
                .expect("truncate log copy");
            let recovered =
                BranchingInverda::open_in(&scratch, inverda_core::DurabilityOptions::default())
                    .expect("recover");
            assert_eq!(
                &snapshot_all(&recovered),
                expected,
                "recovery at boundary {i} (cut +{delta}) must equal the live prefix state"
            );
            std::fs::remove_dir_all(&scratch).ok();
        }
    }

    // A recovered manager is fully live: it keeps the replay invariant
    // through further writes.
    let scratch = fresh_dir("resume");
    copy_dir(&dir, &scratch);
    let recovered = BranchingInverda::open_in(&scratch, inverda_core::DurabilityOptions::default())
        .expect("recover final");
    let rmain = recovered.main();
    rmain
        .insert(
            "G0",
            "T0",
            vec![5.into(), Value::text("post"), Value::text("w")],
        )
        .expect("post-recovery insert");
    assert_branch_equals_replay(&rmain, false, "after recovery + write");
    drop(recovered);
    std::fs::remove_dir_all(&scratch).ok();
    unpin_knobs();
}
