//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` with the `parking_lot` API shape:
//! `lock()` / `read()` / `write()` return guards directly (poisoning is
//! impossible in `parking_lot`; here a poisoned lock recovers the inner
//! guard, matching the "ignore poison" semantics the workspace relies on).

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with the `parking_lot` guard API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with the `parking_lot` guard API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
