//! Offline vendored stand-in for a rayon-style **scoped work-stealing
//! thread pool** (the build environment has no network access, so `rayon`
//! itself cannot be pulled in; swap this crate for `rayon`/`rayon-core` if
//! that ever changes).
//!
//! The API surface is the small subset the InVerDa engine needs:
//!
//! * [`ThreadPool::new`] spawns a fixed set of worker threads, each owning a
//!   deque of jobs; idle workers **steal** from their siblings, so uneven
//!   task sizes (one big join chunk next to many small ones) still saturate
//!   the pool.
//! * [`ThreadPool::scope`] runs a closure that may [`Scope::spawn`] jobs
//!   **borrowing the caller's stack** (like `rayon::scope`). The scope does
//!   not return until every spawned job finished; the calling thread helps
//!   execute jobs while it waits, so nested scopes (a parallel evaluation
//!   triggering a parallel sub-resolution) cannot deadlock and a pool of
//!   `n` workers yields `n + 1`-way parallelism.
//! * [`ThreadPool::map_indexed`] is the convenience used by the engine's
//!   fan-outs: run `n` independent tasks and collect their results **by
//!   index**, which is what makes the engine's parallel paths
//!   order-deterministic — results are merged in task order, never in
//!   completion order.
//!
//! Panics inside a job are caught, forwarded, and re-raised on the thread
//! that owns the scope (again like rayon), so a failing differential
//! assertion inside a parallel test still fails that test.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A type-erased job. Jobs are spawned with a scope lifetime and transmuted
/// to `'static`; soundness is the scope's completion barrier (see
/// [`ThreadPool::scope`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct Shared {
    /// One job deque per worker. Workers pop from the back of their own
    /// deque and steal from the front of a sibling's.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Wakes idle workers when jobs arrive (and shuts them down).
    idle: Condvar,
    idle_lock: Mutex<()>,
    /// Number of queued-but-not-yet-taken jobs.
    pending: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pop or steal one job, scanning all deques starting at `home`.
    fn take_job(&self, home: usize) -> Option<Job> {
        let n = self.queues.len();
        for i in 0..n {
            let q = &self.queues[(home + i) % n];
            let job = if i == 0 {
                q.lock().unwrap_or_else(|e| e.into_inner()).pop_back()
            } else {
                q.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
            };
            if let Some(job) = job {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    fn push_job(&self, slot: usize, job: Job) {
        self.queues[slot % self.queues.len()]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.idle.notify_all();
    }
}

/// Completion state of one [`ThreadPool::scope`] call.
struct ScopeState {
    /// Jobs spawned but not yet finished.
    remaining: AtomicUsize,
    /// First panic payload raised by a job of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A scoped work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Round-robin spawn cursor.
    next_queue: AtomicUsize,
}

impl ThreadPool {
    /// Spawn a pool of `workers` background threads (at least one). The
    /// thread calling [`scope`](ThreadPool::scope) participates too, so the
    /// effective parallelism is `workers + 1`.
    pub fn new(workers: usize) -> ThreadPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Condvar::new(),
            idle_lock: Mutex::new(()),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|home| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("workpool-{home}"))
                    .spawn(move || worker_loop(&shared, home))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            next_queue: AtomicUsize::new(0),
        }
    }

    /// Number of background workers.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Run `op`, allowing it to [`Scope::spawn`] jobs that borrow data from
    /// the surrounding stack frame. Does not return (or unwind) until every
    /// spawned job has finished — that barrier is what makes the internal
    /// lifetime erasure sound. The calling thread executes jobs while it
    /// waits.
    pub fn scope<'scope, R>(&self, op: impl FnOnce(&Scope<'scope, '_>) -> R) -> R {
        let state = Arc::new(ScopeState {
            remaining: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _scope: std::marker::PhantomData,
        };
        let out = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // Help until every job of this scope completed — even if `op`
        // panicked, jobs still borrow the stack and must finish first.
        while state.remaining.load(Ordering::SeqCst) > 0 {
            match self.shared.take_job(0) {
                Some(job) => job(),
                None => std::thread::yield_now(),
            }
        }
        if let Some(payload) = state.panic.lock().unwrap_or_else(|e| e.into_inner()).take() {
            resume_unwind(payload);
        }
        match out {
            Ok(out) => out,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Run `n` independent tasks on the pool and collect their results in
    /// task order (index `i` of the output is `task(i)`), regardless of
    /// which worker finished first.
    ///
    /// `width` is a **hard bound on this call's concurrency**: at most
    /// `width` lanes (the caller plus `width - 1` pool jobs) pull task
    /// indices from a shared cursor, so `width = 2` runs at most 2 tasks
    /// at any moment even on a 16-core pool — a `threads = n` sweep
    /// measures n-way execution, not pool-sized execution. (Nested
    /// `map_indexed` calls inside tasks each get their own bound.)
    pub fn map_indexed<T, F>(&self, n: usize, width: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n <= 1 || width <= 1 {
            return (0..n).map(task).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let lane = || loop {
            let i = cursor.fetch_add(1, Ordering::SeqCst);
            if i >= n {
                break;
            }
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(task(i));
        };
        self.scope(|s| {
            for _ in 0..(width - 1).min(n - 1) {
                s.spawn(lane);
            }
            // The caller is the remaining lane.
            lane();
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every task index was claimed by a lane")
            })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.idle.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, home: usize) {
    loop {
        if let Some(job) = shared.take_job(home) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Park until work arrives (with a timeout so a lost wakeup cannot
        // strand a worker forever).
        let guard = shared.idle_lock.lock().unwrap_or_else(|e| e.into_inner());
        if shared.pending.load(Ordering::SeqCst) == 0 && !shared.shutdown.load(Ordering::SeqCst) {
            let _ = shared.idle.wait_timeout(guard, Duration::from_millis(1));
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`].
pub struct Scope<'scope, 'pool> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'scope` (the jobs' borrow lifetime).
    _scope: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope, '_> {
    /// Queue a job. It may borrow anything that outlives the scope; it runs
    /// on some pool worker (or on the scope's own thread while it waits).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.remaining.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            state.remaining.fetch_sub(1, Ordering::SeqCst);
        });
        // SAFETY: `scope` does not return until `remaining` reaches zero,
        // i.e. after this job (and its borrows) are done; the job box never
        // outlives the borrowed data.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        let slot = self.pool.next_queue.fetch_add(1, Ordering::Relaxed);
        self.pool.shared.push_job(slot, job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_task_order() {
        let pool = ThreadPool::new(3);
        let out = pool.map_indexed(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn scope_jobs_borrow_stack_data() {
        let pool = ThreadPool::new(2);
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut sums = vec![0u64; 4];
        pool.scope(|s| {
            for (i, slot) in sums.iter_mut().enumerate() {
                let chunk = &data[i * 2..i * 2 + 2];
                s.spawn(move || *slot = chunk.iter().sum());
            }
        });
        assert_eq!(sums, vec![3, 7, 11, 15]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let total: usize = pool
            .map_indexed(8, 4, |i| pool.map_indexed(8, 4, move |j| i * j).len())
            .into_iter()
            .sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn work_stealing_drains_uneven_tasks() {
        let pool = ThreadPool::new(3);
        // One long task next to many short ones; everything must complete.
        let out = pool.map_indexed(32, 4, |i| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn panics_propagate_to_the_scope_owner() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("job panic"));
            });
        }));
        assert!(result.is_err());
        // The pool must stay usable afterwards.
        assert_eq!(pool.map_indexed(4, 2, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn width_one_runs_inline() {
        let pool = ThreadPool::new(1);
        let tid = std::thread::current().id();
        let out = pool.map_indexed(3, 1, move |_| std::thread::current().id() == tid);
        assert_eq!(out, vec![true, true, true]);
    }
}
