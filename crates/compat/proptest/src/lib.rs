//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`, integer
//! ranges, regex-literal string strategies, tuples, collections, `option::of`,
//! `bool::ANY`, `prop_oneof!`, and the `proptest!` / `prop_assert*` macros.
//!
//! Differences from the real crate: **no shrinking** — a failing case prints
//! the generated inputs and panics — and case generation is deterministic per
//! test name (override with `PROPTEST_SEED`; case count with
//! `PROPTEST_CASES`).

pub mod strategy;

pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy};

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::fmt;
    use std::ops::Range;

    fn target_len(rng: &mut TestRng, size: &Range<usize>) -> usize {
        assert!(size.start < size.end, "empty size range");
        rng.gen_range(size.start..size.end)
    }

    /// Strategy producing a `Vec` of elements.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = target_len(rng, &self.size);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing a `BTreeMap`.
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    /// `BTreeMap` with `size` entries (fewer if generated keys collide).
    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord + fmt::Debug,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = target_len(rng, &self.size);
            let mut out = BTreeMap::new();
            // Bounded extra attempts when keys collide.
            for _ in 0..n.saturating_mul(4) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            out
        }
    }

    /// Strategy producing a `BTreeSet`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` with `size` elements (fewer if generated values collide).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + fmt::Debug,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = target_len(rng, &self.size);
            let mut out = BTreeSet::new();
            for _ in 0..n.saturating_mul(4) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// `Option` strategies (`prop::option::*`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Option<S::Value>`.
    pub struct OptionStrategy<S>(S);

    /// `None` about a quarter of the time, `Some` otherwise (like proptest's
    /// default weighting).
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Boolean strategies (`prop::bool::*`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing either boolean uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Uniform boolean.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }
}

/// The proptest prelude: strategies, config, and macros.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }` becomes
/// a test running the body over `config.cases` generated inputs. On failure
/// the generated inputs are printed and the panic is re-raised (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __base =
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::rng_for(__base, __case);
                let __inputs = (
                    $( $crate::strategy::Strategy::generate(&$strat, &mut __rng), )+
                );
                let __repr = format!("{:#?}", __inputs);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        let ( $($pat,)+ ) = __inputs;
                        // Bodies may `return Ok(())` / use `?` like real
                        // proptest; run them in a Result-returning closure.
                        let __ret: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (move || {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                        if let Err(__err) = __ret {
                            panic!("test case returned error: {:?}", __err);
                        }
                    }),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed; inputs:\n{}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __repr
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}
