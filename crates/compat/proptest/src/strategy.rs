//! The [`Strategy`] trait and the combinators / primitive strategies the
//! workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG state.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feed generated values into a function producing a second strategy.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Discard generated values failing the predicate (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: fmt::Debug + Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Choose uniformly among the options.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// ---- Integer ranges -------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// ---- `any` ----------------------------------------------------------------

/// Strategy for the full domain of a primitive type.
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T` (`any::<i64>()`, `any::<bool>()`, …).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

// ---- Tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8
);
impl_tuple_strategy!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9
);

// ---- Regex-literal string strategies --------------------------------------

/// A string literal is a strategy: the pattern is a tiny regex subset —
/// literal characters, character classes `[a-z0-9_.]` (with ranges), and
/// counted repetition `{m}` / `{m,n}`. Enough for identifier-shaped inputs;
/// unsupported syntax panics with a clear message.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum PatternItem {
    /// One of these characters.
    Class(Vec<char>),
    /// Exactly this character.
    Literal(char),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
        match c {
            ']' => break,
            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                let start = prev.take().expect("checked");
                let end = chars.next().expect("peeked");
                assert!(
                    start <= end,
                    "invalid range {start}-{end} in pattern {pattern:?}"
                );
                out.extend((start..=end).filter(|ch| *ch != start));
            }
            c => {
                out.push(c);
                prev = Some(c);
            }
        }
    }
    assert!(
        !out.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    out
}

fn parse_repeat(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated repetition in pattern {pattern:?}"),
                }
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repetition lower bound"),
                    n.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        }
        Some(c @ ('*' | '+' | '?' | '(' | ')' | '|')) => {
            panic!("unsupported regex operator {c:?} in pattern {pattern:?} (shim supports literals, classes, and counted repetition)")
        }
        _ => (1, 1),
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut items = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let item = match c {
            '[' => PatternItem::Class(parse_class(&mut chars, pattern)),
            '\\' => PatternItem::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '*' | '+' | '?' | '(' | ')' | '|' | '{' => panic!(
                "unsupported regex operator {c:?} in pattern {pattern:?} (shim supports literals, classes, and counted repetition)"
            ),
            c => PatternItem::Literal(c),
        };
        let (lo, hi) = parse_repeat(&mut chars, pattern);
        items.push((item, lo, hi));
    }
    let mut out = String::new();
    for (item, lo, hi) in &items {
        let n = if lo == hi {
            *lo
        } else {
            rng.gen_range(*lo..hi + 1)
        };
        for _ in 0..n {
            match item {
                PatternItem::Literal(c) => out.push(*c),
                PatternItem::Class(chars) => out.push(chars[rng.gen_range(0..chars.len())]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{rng_for, seed_for};

    fn rng() -> TestRng {
        rng_for(seed_for("strategy-tests"), 0)
    }

    #[test]
    fn regex_patterns_generate_matching_strings() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[A-Za-z][A-Za-z0-9_]{0,8}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic(), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn class_with_dot_and_fixed_count() {
        let mut r = rng();
        let s = "x[a.]{3}y".generate(&mut r);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with('x') && s.ends_with('y'));
        assert!(s[1..4].chars().all(|c| c == 'a' || c == '.'), "{s:?}");
    }

    #[test]
    fn combinators_compose() {
        let mut r = rng();
        let strat = (0i64..10)
            .prop_map(|v| v * 2)
            .prop_flat_map(|v| crate::collection::vec(0i64..v.max(1), 1..3));
        for _ in 0..50 {
            let v = strat.generate(&mut r);
            assert!(!v.is_empty() && v.len() <= 2);
        }
        let u = crate::prop_oneof![Just(1i64), Just(2i64)];
        for _ in 0..20 {
            assert!([1, 2].contains(&u.generate(&mut r)));
        }
    }
}
