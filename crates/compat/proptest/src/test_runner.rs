//! Test-runner configuration and deterministic RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG threaded through strategies.
pub type TestRng = StdRng;

/// Error type a `proptest!` body may early-return with (`return Ok(())` /
/// `Err(...)`); carried only for API shape, rendered via `Debug`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// How a `proptest!` block runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Deterministic base seed for a fully qualified test name, overridable via
/// `PROPTEST_SEED`.
pub fn seed_for(test_name: &str) -> u64 {
    if let Some(seed) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        return seed;
    }
    // FNV-1a over the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// RNG for one case of a property.
pub fn rng_for(base: u64, case: u32) -> TestRng {
    StdRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}
