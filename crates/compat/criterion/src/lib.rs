//! Offline stand-in for the `criterion` crate.
//!
//! Supports the `criterion_group!` / `criterion_main!` macros, benchmark
//! groups, and `Bencher::iter` / `iter_batched`. Reports mean wall-clock time
//! per iteration to stdout; no statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// How batched inputs are sized (only the variants the workspace names).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// One setup per measured routine invocation.
    PerIteration,
    /// Small batches (treated like `PerIteration` here).
    SmallInput,
    /// Large batches (treated like `PerIteration` here).
    LargeInput,
}

/// Measurement settings shared by groups.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Soft time budget per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let budget = self.measurement_time;
        run_benchmark(&id.into(), sample_size, budget, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark one function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&id.into(), samples, self.criterion.measurement_time, f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, budget: Duration, mut f: F) {
    let mut bencher = Bencher {
        samples: samples.max(1),
        budget,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters > 0 {
        let mean = bencher.total.as_secs_f64() / bencher.iters as f64;
        println!(
            "  {id}: {:.3} µs/iter ({} iters)",
            mean * 1e6,
            bencher.iters
        );
    } else {
        println!("  {id}: no iterations executed");
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure a routine repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
            self.iters += 1;
            if start.elapsed() > self.budget {
                break;
            }
        }
        self.total += start.elapsed();
    }

    /// Measure a routine with per-iteration setup (setup time excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
