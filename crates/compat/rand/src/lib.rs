//! Offline stand-in for the `rand` crate.
//!
//! Provides `rngs::StdRng` (xoshiro256++ seeded via splitmix64),
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open integer
//! ranges — the surface the workloads use. Deterministic by construction;
//! **not** cryptographically secure and not stream-compatible with the real
//! `rand` crate.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over a [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from a half-open integer range. Panics on empty
    /// ranges, like the real crate.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), &range)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types uniformly sampleable from a half-open range.
pub trait SampleRange: Copy {
    /// Map a raw word into the range.
    fn sample(word: u64, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(word: u64, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + (word % span) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(word: u64, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((word % span) as $t)
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (public-domain reference
    /// algorithm by Blackman & Vigna), seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0u32..100);
            assert_eq!(x, b.gen_range(0u32..100));
            assert!(x < 100);
            let y = a.gen_range(-5i64..5);
            assert_eq!(y, b.gen_range(-5i64..5));
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
