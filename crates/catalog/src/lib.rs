//! # inverda-catalog
//!
//! The **schema version catalog** — "the central knowledge base for all
//! schema versions and the evolution between them" (paper Section 3).
//!
//! The catalog stores the genealogy of schema versions as a directed acyclic
//! **hypergraph** `(T, E)`: vertices are table versions, hyperedges are SMO
//! instances evolving a set of source table versions into a set of target
//! table versions. Each schema version is a subset of the table versions;
//! versions share a table version when it does not evolve between them.
//!
//! The catalog also owns the **materialization schema** machinery
//! (Section 7): which SMO instances are materialized, the two validity
//! conditions (55)/(56), the induced physical table schema, enumeration of
//! all valid materialization schemas (Table 2), and the storage-case
//! resolution (local / forwards / backwards, Section 6 Figure 6) that the
//! delta-code generation is driven by.

#![warn(missing_docs)]

pub mod error;
pub mod genealogy;
pub mod materialization;

pub use error::CatalogError;
pub use genealogy::{Genealogy, SchemaVersion, SmoId, SmoInstance, TableVersion, TableVersionId};
pub use materialization::{MaterializationSchema, StorageCase};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CatalogError>;
