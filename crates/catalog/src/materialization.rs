//! Materialization schemas (Section 7) and storage-case resolution
//! (Section 6, Figure 6).
//!
//! The materialization states of all SMO instances form the
//! *materialization schema* `M`; it determines the *physical table schema*
//! `P` — which table versions are directly stored. A schema is valid iff
//!
//! * (55) every source table version of a materialized SMO has its incoming
//!   SMO materialized (the data has actually arrived there), and
//! * (56) no source table version is claimed by two materialized outgoing
//!   SMOs (non-redundant materialization).
//!
//! `CREATE TABLE` SMOs are always materialized ("the initially materialized
//! tables are the targets of create table SMOs"); `DROP TABLE` SMOs never
//! move data, so they are never members of `M`.

use crate::genealogy::{Genealogy, SmoId, TableVersionId};
use crate::{CatalogError, Result};
use std::collections::BTreeSet;
use std::fmt;

/// A materialization schema: the set of materialized, data-moving SMOs.
/// CREATE TABLE SMOs are implicitly materialized and not stored here.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct MaterializationSchema {
    materialized: BTreeSet<SmoId>,
}

impl MaterializationSchema {
    /// The initial materialization: only CREATE TABLE SMOs are materialized
    /// ("Initially, all SMOs except of the create table SMOs are
    /// virtualized").
    pub fn initial() -> Self {
        MaterializationSchema::default()
    }

    /// Build from an explicit set of data-moving SMOs.
    pub fn from_smos(smos: impl IntoIterator<Item = SmoId>) -> Self {
        MaterializationSchema {
            materialized: smos.into_iter().collect(),
        }
    }

    /// Whether the SMO is materialized under this schema. CREATE TABLE SMOs
    /// always are; DROP TABLE SMOs never.
    pub fn is_materialized(&self, g: &Genealogy, smo: SmoId) -> bool {
        let inst = g.smo(smo);
        if inst.derived.kind == "CREATE TABLE" {
            return true;
        }
        if !inst.moves_data() {
            return false;
        }
        self.materialized.contains(&smo)
    }

    /// The explicitly materialized (data-moving) SMOs.
    pub fn smos(&self) -> impl Iterator<Item = SmoId> + '_ {
        self.materialized.iter().copied()
    }

    /// Number of explicitly materialized SMOs.
    pub fn len(&self) -> usize {
        self.materialized.len()
    }

    /// True for the initial materialization.
    pub fn is_empty(&self) -> bool {
        self.materialized.is_empty()
    }

    /// Check validity conditions (55) and (56).
    pub fn validate(&self, g: &Genealogy) -> Result<()> {
        for smo_id in &self.materialized {
            let inst = g.smo(*smo_id);
            if !inst.moves_data() {
                return Err(CatalogError::InvalidMaterialization {
                    reason: format!("{smo_id} ({}) does not move data", inst.derived.kind),
                });
            }
            for src in &inst.sources {
                // (55): the data must have arrived at every source.
                let incoming = g.incoming(*src);
                if !self.is_materialized(g, incoming) {
                    return Err(CatalogError::InvalidMaterialization {
                        reason: format!(
                            "condition (55): source {src} of materialized {smo_id} has \
                             unmaterialized incoming SMO {incoming}"
                        ),
                    });
                }
                // (56): no sibling outgoing SMO may also be materialized.
                for other in g.outgoing(*src) {
                    if other != smo_id && self.materialized.contains(other) {
                        return Err(CatalogError::InvalidMaterialization {
                            reason: format!(
                                "condition (56): table version {src} is source of two \
                                 materialized SMOs {smo_id} and {other}"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The physical table schema `P`: table versions directly stored.
    pub fn physical_tables(&self, g: &Genealogy) -> Vec<TableVersionId> {
        g.table_versions()
            .filter(|tv| matches!(self.storage_of(g, tv.id), StorageCase::Local))
            .map(|tv| tv.id)
            .collect()
    }

    /// Resolve the storage case of a table version (Section 6, Figure 6).
    pub fn storage_of(&self, g: &Genealogy, tv: TableVersionId) -> StorageCase {
        // Case 2 (forwards): one outgoing SMO is materialized — the data
        // lives in newer versions.
        for out in g.outgoing(tv) {
            if self.is_materialized(g, *out) {
                return StorageCase::Forward(*out);
            }
        }
        // Case 1 (local): the incoming SMO is materialized.
        let incoming = g.incoming(tv);
        if self.is_materialized(g, incoming) {
            return StorageCase::Local;
        }
        // Case 3 (backwards): the data lives in older versions.
        StorageCase::Backward(incoming)
    }

    /// Enumerate every valid materialization schema of the genealogy.
    ///
    /// The count depends on the evolution's structure: a linear chain of N
    /// dependent SMOs has N+1 valid schemas, N independent SMOs have 2^N
    /// (Section 8.3); TasKy has exactly five (Table 2).
    pub fn enumerate_valid(g: &Genealogy) -> Vec<MaterializationSchema> {
        let movers: Vec<SmoId> = g.smos().filter(|s| s.moves_data()).map(|s| s.id).collect();
        let mut out = Vec::new();
        let mut current = BTreeSet::new();
        enumerate(g, &movers, 0, &mut current, &mut out);
        out.sort();
        out
    }

    /// Derive the materialization schema that stores the given table
    /// versions physically: every SMO on the ancestry path of each target
    /// must be materialized.
    pub fn for_table_versions(
        g: &Genealogy,
        targets: &[TableVersionId],
    ) -> Result<MaterializationSchema> {
        let mut materialized = BTreeSet::new();
        let mut stack: Vec<SmoId> = targets.iter().map(|t| g.incoming(*t)).collect();
        while let Some(smo_id) = stack.pop() {
            let inst = g.smo(smo_id);
            if inst.derived.kind == "CREATE TABLE" {
                continue;
            }
            if inst.moves_data() && !materialized.insert(smo_id) {
                continue;
            }
            for src in &inst.sources {
                stack.push(g.incoming(*src));
            }
        }
        let schema = MaterializationSchema { materialized };
        schema.validate(g)?;
        Ok(schema)
    }
}

fn enumerate(
    g: &Genealogy,
    movers: &[SmoId],
    idx: usize,
    current: &mut BTreeSet<SmoId>,
    out: &mut Vec<MaterializationSchema>,
) {
    if idx == movers.len() {
        let schema = MaterializationSchema {
            materialized: current.clone(),
        };
        if schema.validate(g).is_ok() {
            out.push(schema);
        }
        return;
    }
    enumerate(g, movers, idx + 1, current, out);
    current.insert(movers[idx]);
    // Prune: partial sets that already violate (55)/(56) cannot become
    // valid by adding more SMOs only for (56); (55) can be repaired later,
    // so validate fully only at the leaves but prune (56) violations here.
    let inst = g.smo(movers[idx]);
    let violates_56 = inst.sources.iter().any(|src| {
        g.outgoing(*src)
            .iter()
            .any(|o| *o != movers[idx] && current.contains(o))
    });
    if !violates_56 {
        enumerate(g, movers, idx + 1, current, out);
    }
    current.remove(&movers[idx]);
}

/// Where a table version's data physically lives (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageCase {
    /// Case 1: the table version's own data table is physical.
    Local,
    /// Case 2: the data moved forwards through this materialized outgoing
    /// SMO; access propagates with its γ_src (read) / γ_tgt (write).
    Forward(SmoId),
    /// Case 3: the data still lives behind this virtualized incoming SMO;
    /// access propagates with its γ_tgt (read) / γ_src (write).
    Backward(SmoId),
}

impl fmt::Display for MaterializationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.materialized.iter().map(|s| s.to_string()).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_bidel::{parse_script, Statement};

    fn tasky() -> Genealogy {
        let mut g = Genealogy::new();
        let script = parse_script(
            "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
             CREATE SCHEMA VERSION Do! FROM TasKy WITH \
               SPLIT TABLE Task INTO Todo WITH prio = 1; \
               DROP COLUMN prio FROM Todo DEFAULT 1; \
             CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
               DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
               RENAME COLUMN author IN Author TO name;",
        )
        .unwrap();
        for stmt in script.statements {
            if let Statement::CreateSchemaVersion { name, from, smos } = stmt {
                g.create_schema_version(&name, from.as_deref(), &smos)
                    .unwrap();
            }
        }
        g
    }

    #[test]
    fn tasky_has_exactly_five_valid_materializations() {
        // Table 2 of the paper.
        let g = tasky();
        let all = MaterializationSchema::enumerate_valid(&g);
        assert_eq!(all.len(), 5, "{all:?}");
        // They are: {}, {SPLIT}, {SPLIT, DROP COLUMN}, {DECOMPOSE},
        // {DECOMPOSE, RENAME COLUMN}.
        let sizes: Vec<usize> = all.iter().map(|m| m.len()).collect();
        assert_eq!(sizes.iter().filter(|s| **s == 0).count(), 1);
        assert_eq!(sizes.iter().filter(|s| **s == 1).count(), 2);
        assert_eq!(sizes.iter().filter(|s| **s == 2).count(), 2);
    }

    #[test]
    fn initial_materialization_stores_create_targets() {
        let g = tasky();
        let m = MaterializationSchema::initial();
        m.validate(&g).unwrap();
        let p = m.physical_tables(&g);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0], g.resolve("TasKy", "Task").unwrap());
    }

    #[test]
    fn storage_cases_match_figure_6() {
        let g = tasky();
        let m = MaterializationSchema::initial();
        let task0 = g.resolve("TasKy", "Task").unwrap();
        let todo = g.resolve("Do!", "Todo").unwrap();
        assert_eq!(m.storage_of(&g, task0), StorageCase::Local);
        assert!(matches!(m.storage_of(&g, todo), StorageCase::Backward(_)));

        // Materialize TasKy2: Task-0 reads forwards, TasKy2 tables local.
        let tasky2_tables: Vec<TableVersionId> = vec![
            g.resolve("TasKy2", "Task").unwrap(),
            g.resolve("TasKy2", "Author").unwrap(),
        ];
        let m2 = MaterializationSchema::for_table_versions(&g, &tasky2_tables).unwrap();
        assert_eq!(m2.len(), 2); // DECOMPOSE + RENAME COLUMN
        assert!(matches!(m2.storage_of(&g, task0), StorageCase::Forward(_)));
        for t in &tasky2_tables {
            assert_eq!(m2.storage_of(&g, *t), StorageCase::Local);
        }
        let p = m2.physical_tables(&g);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn condition_56_rejects_sibling_materialization() {
        let g = tasky();
        // SPLIT and DECOMPOSE share source Task-0.
        let task0 = g.resolve("TasKy", "Task").unwrap();
        let outgoing = g.outgoing(task0);
        assert_eq!(outgoing.len(), 2);
        let both = MaterializationSchema::from_smos(outgoing.iter().copied());
        let err = both.validate(&g).unwrap_err();
        assert!(matches!(err, CatalogError::InvalidMaterialization { .. }));
    }

    #[test]
    fn condition_55_rejects_gaps_in_the_chain() {
        let g = tasky();
        // DROP COLUMN without SPLIT: data has not arrived at Todo-0.
        let todo = g.resolve("Do!", "Todo").unwrap();
        let drop_col = g.incoming(todo);
        let m = MaterializationSchema::from_smos([drop_col]);
        let err = m.validate(&g).unwrap_err();
        assert!(matches!(err, CatalogError::InvalidMaterialization { .. }));
    }

    #[test]
    fn for_table_versions_builds_the_full_chain() {
        let g = tasky();
        let todo = g.resolve("Do!", "Todo").unwrap();
        let m = MaterializationSchema::for_table_versions(&g, &[todo]).unwrap();
        assert_eq!(m.len(), 2); // SPLIT + DROP COLUMN
        assert_eq!(m.storage_of(&g, todo), StorageCase::Local);
    }

    #[test]
    fn linear_chain_has_n_plus_one_materializations() {
        // Lower bound of Section 8.3: one table with N ADD COLUMN SMOs has
        // N+1 valid materializations (each prefix of the chain).
        let mut g = Genealogy::new();
        let script = parse_script(
            "CREATE SCHEMA VERSION V0 WITH CREATE TABLE T(a); \
             CREATE SCHEMA VERSION V1 FROM V0 WITH ADD COLUMN b AS a INTO T; \
             CREATE SCHEMA VERSION V2 FROM V1 WITH ADD COLUMN c AS a INTO T; \
             CREATE SCHEMA VERSION V3 FROM V2 WITH ADD COLUMN d AS a INTO T;",
        )
        .unwrap();
        for stmt in script.statements {
            if let Statement::CreateSchemaVersion { name, from, smos } = stmt {
                g.create_schema_version(&name, from.as_deref(), &smos)
                    .unwrap();
            }
        }
        assert_eq!(MaterializationSchema::enumerate_valid(&g).len(), 4);
    }

    #[test]
    fn independent_smos_multiply_materializations() {
        // Upper bound: N independent SMOs -> 2^N.
        let mut g = Genealogy::new();
        let script = parse_script(
            "CREATE SCHEMA VERSION V0 WITH CREATE TABLE A(x); CREATE TABLE B(y); \
             CREATE SCHEMA VERSION V1 FROM V0 WITH \
               ADD COLUMN x2 AS x INTO A; \
               ADD COLUMN y2 AS y INTO B;",
        )
        .unwrap();
        for stmt in script.statements {
            if let Statement::CreateSchemaVersion { name, from, smos } = stmt {
                g.create_schema_version(&name, from.as_deref(), &smos)
                    .unwrap();
            }
        }
        assert_eq!(MaterializationSchema::enumerate_valid(&g).len(), 4);
    }
}
