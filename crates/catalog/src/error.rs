//! Error type for the schema version catalog.

use inverda_bidel::BidelError;
use std::fmt;

/// Errors raised by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A schema version with this name already exists.
    VersionExists {
        /// Offending version name.
        version: String,
    },
    /// The named schema version does not exist.
    UnknownVersion {
        /// Missing version name.
        version: String,
    },
    /// The named table does not exist in the schema version.
    UnknownTable {
        /// Schema version searched.
        version: String,
        /// Missing table name.
        table: String,
    },
    /// An SMO produced a table name that already exists in the version.
    TableExists {
        /// Schema version.
        version: String,
        /// Duplicated table name.
        table: String,
    },
    /// The requested materialization schema violates condition (55) or (56).
    InvalidMaterialization {
        /// Why the schema is invalid.
        reason: String,
    },
    /// A schema version still in use cannot be dropped.
    VersionInUse {
        /// The version.
        version: String,
        /// Why it cannot be dropped.
        reason: String,
    },
    /// Error from SMO semantics derivation.
    Bidel(BidelError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::VersionExists { version } => {
                write!(f, "schema version '{version}' already exists")
            }
            CatalogError::UnknownVersion { version } => {
                write!(f, "unknown schema version '{version}'")
            }
            CatalogError::UnknownTable { version, table } => {
                write!(f, "no table '{table}' in schema version '{version}'")
            }
            CatalogError::TableExists { version, table } => {
                write!(
                    f,
                    "table '{table}' already exists in schema version '{version}'"
                )
            }
            CatalogError::InvalidMaterialization { reason } => {
                write!(f, "invalid materialization schema: {reason}")
            }
            CatalogError::VersionInUse { version, reason } => {
                write!(f, "cannot drop schema version '{version}': {reason}")
            }
            CatalogError::Bidel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<BidelError> for CatalogError {
    fn from(e: BidelError) -> Self {
        CatalogError::Bidel(e)
    }
}
