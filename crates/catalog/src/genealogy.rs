//! The genealogy hypergraph: table versions, SMO instances, schema versions.

use crate::error::CatalogError;
use crate::Result;
use inverda_bidel::semantics::ObserveHint;
use inverda_bidel::{derive_smo, DerivedSmo, SharedAux, Smo, TableRef};
use inverda_datalog::simplify::{rename_generators, rename_relations};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a table version (a vertex of the hypergraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableVersionId(pub u32);

impl fmt::Display for TableVersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tv{}", self.0)
    }
}

/// Identifier of an SMO instance (a hyperedge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SmoId(pub u32);

impl fmt::Display for SmoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "smo{}", self.0)
    }
}

/// A table version: one vertex of the genealogy.
#[derive(Debug, Clone)]
pub struct TableVersion {
    /// Identifier.
    pub id: TableVersionId,
    /// User-visible table name within the schema version(s) exposing it.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Globally unique relation name (`tv<N>`), used as the physical table
    /// name and as the relation name inside instantiated rule sets.
    pub rel: String,
    /// The (single) incoming SMO that created this table version.
    pub created_by: SmoId,
}

/// An SMO instance: one hyperedge, with its instantiated semantics.
#[derive(Debug, Clone)]
pub struct SmoInstance {
    /// Identifier.
    pub id: SmoId,
    /// The parsed SMO.
    pub smo: Smo,
    /// Source table versions.
    pub sources: Vec<TableVersionId>,
    /// Target table versions.
    pub targets: Vec<TableVersionId>,
    /// Semantics with globally unique relation / generator names.
    pub derived: DerivedSmo,
    /// The schema version whose evolution introduced this SMO.
    pub introduced_in: String,
}

impl SmoInstance {
    /// Whether materializing this SMO moves data (CREATE/DROP TABLE do not).
    pub fn moves_data(&self) -> bool {
        self.derived.moves_data
    }
}

/// A schema version: a named subset of table versions.
#[derive(Debug, Clone)]
pub struct SchemaVersion {
    /// Version name (e.g. `TasKy2`).
    pub name: String,
    /// The version this one was evolved from.
    pub parent: Option<String>,
    /// Table name → table version.
    pub tables: BTreeMap<String, TableVersionId>,
    /// SMO instances of the evolution that created this version, in order.
    pub evolution: Vec<SmoId>,
}

/// The genealogy of schema versions (Figure 4).
#[derive(Debug, Clone, Default)]
pub struct Genealogy {
    table_versions: BTreeMap<TableVersionId, TableVersion>,
    smos: BTreeMap<SmoId, SmoInstance>,
    versions: BTreeMap<String, SchemaVersion>,
    /// Outgoing SMO instances per table version.
    out_edges: BTreeMap<TableVersionId, Vec<SmoId>>,
    next_tv: u32,
    next_smo: u32,
}

/// The result of registering one evolution: the new SMO instances, in order.
#[derive(Debug, Clone)]
pub struct EvolutionOutcome {
    /// New schema version name.
    pub version: String,
    /// Newly registered SMO instances.
    pub new_smos: Vec<SmoId>,
    /// Newly created table versions.
    pub new_tables: Vec<TableVersionId>,
}

impl Genealogy {
    /// Empty genealogy.
    pub fn new() -> Self {
        Genealogy::default()
    }

    /// Look up a table version.
    pub fn table_version(&self, id: TableVersionId) -> &TableVersion {
        &self.table_versions[&id]
    }

    /// Look up an SMO instance.
    pub fn smo(&self, id: SmoId) -> &SmoInstance {
        &self.smos[&id]
    }

    /// All SMO instances, ascending by id.
    pub fn smos(&self) -> impl Iterator<Item = &SmoInstance> {
        self.smos.values()
    }

    /// All table versions, ascending by id.
    pub fn table_versions(&self) -> impl Iterator<Item = &TableVersion> {
        self.table_versions.values()
    }

    /// A schema version by name.
    pub fn version(&self, name: &str) -> Result<&SchemaVersion> {
        self.versions
            .get(name)
            .ok_or_else(|| CatalogError::UnknownVersion {
                version: name.to_string(),
            })
    }

    /// All schema version names (sorted).
    pub fn version_names(&self) -> Vec<&str> {
        self.versions.keys().map(String::as_str).collect()
    }

    /// Whether a schema version exists.
    pub fn has_version(&self, name: &str) -> bool {
        self.versions.contains_key(name)
    }

    /// The table version backing `version.table`.
    pub fn resolve(&self, version: &str, table: &str) -> Result<TableVersionId> {
        let v = self.version(version)?;
        v.tables
            .get(table)
            .copied()
            .ok_or_else(|| CatalogError::UnknownTable {
                version: version.to_string(),
                table: table.to_string(),
            })
    }

    /// Outgoing SMO instances of a table version.
    pub fn outgoing(&self, id: TableVersionId) -> &[SmoId] {
        self.out_edges.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The incoming SMO of a table version.
    pub fn incoming(&self, id: TableVersionId) -> SmoId {
        self.table_versions[&id].created_by
    }

    /// Register a new schema version evolved from `from` with `smos`.
    ///
    /// This is the catalog side of the paper's **Database Evolution
    /// Operation**: each SMO's semantics is derived from the current table
    /// schemas, its relations are renamed to globally unique names, and the
    /// new version's table set is computed. Complexity is `O(N + M)` in the
    /// number of SMOs `N` and untouched table versions `M` — delta code is
    /// local to each SMO (Section 8.1).
    pub fn create_schema_version(
        &mut self,
        name: &str,
        from: Option<&str>,
        smos: &[Smo],
    ) -> Result<EvolutionOutcome> {
        if self.versions.contains_key(name) {
            return Err(CatalogError::VersionExists {
                version: name.to_string(),
            });
        }
        // Working table map: starts as the parent's tables.
        let mut tables: BTreeMap<String, TableVersionId> = match from {
            Some(parent) => self.version(parent)?.tables.clone(),
            None => BTreeMap::new(),
        };
        let mut new_smos = Vec::new();
        let mut new_tables = Vec::new();

        for smo in smos {
            // Source schemas visible to this SMO.
            let src_schemas: BTreeMap<String, Vec<String>> = tables
                .iter()
                .map(|(n, id)| (n.clone(), self.table_versions[id].columns.clone()))
                .collect();
            let derived = derive_smo(smo, &src_schemas)?;

            let smo_id = SmoId(self.next_smo);
            self.next_smo += 1;

            // Resolve sources and build the global rename map.
            let mut rel_map: BTreeMap<String, String> = BTreeMap::new();
            let mut gen_map: BTreeMap<String, String> = BTreeMap::new();
            let mut source_ids = Vec::new();
            for src in &derived.src_data {
                let tv_id = *tables
                    .get(&src.name)
                    .ok_or_else(|| CatalogError::UnknownTable {
                        version: name.to_string(),
                        table: src.name.clone(),
                    })?;
                rel_map.insert(src.rel.clone(), self.table_versions[&tv_id].rel.clone());
                source_ids.push(tv_id);
            }
            // Allocate target table versions.
            let mut target_ids = Vec::new();
            let mut renamed_tgts = Vec::new();
            for tgt in &derived.tgt_data {
                let tv_id = TableVersionId(self.next_tv);
                self.next_tv += 1;
                let rel = tv_id.to_string();
                rel_map.insert(tgt.rel.clone(), rel.clone());
                self.table_versions.insert(
                    tv_id,
                    TableVersion {
                        id: tv_id,
                        name: tgt.name.clone(),
                        columns: tgt.columns.clone(),
                        rel,
                        created_by: smo_id,
                    },
                );
                target_ids.push(tv_id);
                new_tables.push(tv_id);
                renamed_tgts.push(tv_id);
            }
            // Rename aux tables and generators.
            let aux_name = |tag: &str| {
                // Distinct punctuation must stay distinct: `R-` (lost twins)
                // and `R*` (condition violators) are different tables.
                let mut sanitized = String::with_capacity(tag.len() + 6);
                for c in tag.chars() {
                    match c {
                        '-' => sanitized.push_str("_minus"),
                        '+' => sanitized.push_str("_plus"),
                        '*' => sanitized.push_str("_star"),
                        '\'' => sanitized.push_str("_prime"),
                        c if c.is_alphanumeric() => sanitized.push(c),
                        _ => sanitized.push('_'),
                    }
                }
                format!("{smo_id}_aux_{sanitized}")
            };
            let fix_aux = |t: &TableRef, rel_map: &mut BTreeMap<String, String>| -> TableRef {
                let global = aux_name(t.rel.trim_start_matches("aux#"));
                rel_map.insert(t.rel.clone(), global.clone());
                TableRef {
                    name: t.name.clone(),
                    rel: global,
                    columns: t.columns.clone(),
                }
            };
            let src_aux: Vec<TableRef> = derived
                .src_aux
                .iter()
                .map(|t| fix_aux(t, &mut rel_map))
                .collect();
            let tgt_aux: Vec<TableRef> = derived
                .tgt_aux
                .iter()
                .map(|t| fix_aux(t, &mut rel_map))
                .collect();
            let shared_aux: Vec<SharedAux> = derived
                .shared_aux
                .iter()
                .map(|s| {
                    let table = fix_aux(&s.table, &mut rel_map);
                    let new_name = format!("{}@new", table.rel);
                    rel_map.insert(s.new_name.clone(), new_name.clone());
                    SharedAux {
                        old_name: table.rel.clone(),
                        new_name,
                        table,
                    }
                })
                .collect();
            for g in &derived.generators {
                gen_map.insert(
                    g.clone(),
                    format!(
                        "{smo_id}_gen_{}",
                        g.trim_start_matches("gen#").replace('#', "_")
                    ),
                );
            }

            // Apply renames to the rule sets and hints.
            let to_tgt = rename_generators(&rename_relations(&derived.to_tgt, &rel_map), &gen_map);
            let to_src = rename_generators(&rename_relations(&derived.to_src, &rel_map), &gen_map);
            let observe_hints: Vec<ObserveHint> = derived
                .observe_hints
                .iter()
                .map(|h| ObserveHint {
                    generator: gen_map
                        .get(&h.generator)
                        .cloned()
                        .unwrap_or_else(|| h.generator.clone()),
                    relation: rel_map
                        .get(&h.relation)
                        .cloned()
                        .unwrap_or_else(|| h.relation.clone()),
                })
                .collect();
            let generators: Vec<String> = derived
                .generators
                .iter()
                .map(|g| gen_map[g].clone())
                .collect();
            let src_data: Vec<TableRef> = derived
                .src_data
                .iter()
                .map(|t| TableRef {
                    name: t.name.clone(),
                    rel: rel_map[&t.rel].clone(),
                    columns: t.columns.clone(),
                })
                .collect();
            let tgt_data: Vec<TableRef> = derived
                .tgt_data
                .iter()
                .map(|t| TableRef {
                    name: t.name.clone(),
                    rel: rel_map[&t.rel].clone(),
                    columns: t.columns.clone(),
                })
                .collect();
            let payload_keyed_aux: Vec<String> = derived
                .payload_keyed_aux
                .iter()
                .map(|rel| rel_map.get(rel).cloned().unwrap_or_else(|| rel.clone()))
                .collect();
            let derived_global = DerivedSmo {
                kind: derived.kind,
                src_data,
                tgt_data,
                src_aux,
                tgt_aux,
                shared_aux,
                to_tgt,
                to_src,
                generators,
                observe_hints,
                payload_keyed_aux,
                moves_data: derived.moves_data,
            };

            // Update the working table map: consumed sources disappear,
            // targets appear under their user names.
            for (src_name, tv_id) in derived_global
                .src_data
                .iter()
                .map(|t| (t.name.clone(), ()))
                .zip(source_ids.iter())
                .map(|((n, ()), id)| (n, *id))
            {
                let _ = tv_id;
                tables.remove(&src_name);
            }
            for (tgt, tv_id) in derived_global.tgt_data.iter().zip(renamed_tgts.iter()) {
                if tables.contains_key(&tgt.name) {
                    return Err(CatalogError::TableExists {
                        version: name.to_string(),
                        table: tgt.name.clone(),
                    });
                }
                tables.insert(tgt.name.clone(), *tv_id);
            }

            // Register the edge.
            for src_id in &source_ids {
                self.out_edges.entry(*src_id).or_default().push(smo_id);
            }
            self.smos.insert(
                smo_id,
                SmoInstance {
                    id: smo_id,
                    smo: smo.clone(),
                    sources: source_ids,
                    targets: target_ids,
                    derived: derived_global,
                    introduced_in: name.to_string(),
                },
            );
            new_smos.push(smo_id);
        }

        self.versions.insert(
            name.to_string(),
            SchemaVersion {
                name: name.to_string(),
                parent: from.map(String::from),
                tables,
                evolution: new_smos.clone(),
            },
        );
        Ok(EvolutionOutcome {
            version: name.to_string(),
            new_smos,
            new_tables,
        })
    }

    /// Drop a schema version from the catalog. The version's SMOs and table
    /// versions are kept while they still connect or serve the remaining
    /// versions ("the respective SMOs are only removed in case they are no
    /// longer part of an evolution that connects two remaining schema
    /// versions"). Returns the table versions whose data tables are no
    /// longer referenced by any remaining version and have no outgoing SMOs
    /// — candidates for physical cleanup by the engine.
    pub fn drop_schema_version(&mut self, name: &str) -> Result<Vec<TableVersionId>> {
        if !self.versions.contains_key(name) {
            return Err(CatalogError::UnknownVersion {
                version: name.to_string(),
            });
        }
        // A version that other versions were evolved from must stay while
        // they exist (its SMOs connect them).
        let dependents: Vec<&str> = self
            .versions
            .values()
            .filter(|v| v.parent.as_deref() == Some(name))
            .map(|v| v.name.as_str())
            .collect();
        if !dependents.is_empty() {
            return Err(CatalogError::VersionInUse {
                version: name.to_string(),
                reason: format!(
                    "versions evolved from it still exist: {}",
                    dependents.join(", ")
                ),
            });
        }
        self.versions.remove(name);
        // Conservative GC: table versions in no remaining version and with
        // no outgoing SMOs (leaves of the genealogy) are unreachable.
        let referenced: std::collections::BTreeSet<TableVersionId> = self
            .versions
            .values()
            .flat_map(|v| v.tables.values().copied())
            .collect();
        let orphans: Vec<TableVersionId> = self
            .table_versions
            .keys()
            .copied()
            .filter(|id| !referenced.contains(id) && self.outgoing(*id).is_empty())
            .collect();
        Ok(orphans)
    }

    /// All SMO instance ids, ascending.
    pub fn smo_ids(&self) -> Vec<SmoId> {
        self.smos.keys().copied().collect()
    }

    /// Count of table versions.
    pub fn table_version_count(&self) -> usize {
        self.table_versions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_bidel::parse_script;
    use inverda_bidel::Statement;

    /// Build the paper's TasKy genealogy (Figure 4).
    pub(crate) fn tasky_genealogy() -> Genealogy {
        let mut g = Genealogy::new();
        let script = parse_script(
            "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
             CREATE SCHEMA VERSION Do! FROM TasKy WITH \
               SPLIT TABLE Task INTO Todo WITH prio = 1; \
               DROP COLUMN prio FROM Todo DEFAULT 1; \
             CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
               DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
               RENAME COLUMN author IN Author TO name;",
        )
        .unwrap();
        for stmt in script.statements {
            match stmt {
                Statement::CreateSchemaVersion { name, from, smos } => {
                    g.create_schema_version(&name, from.as_deref(), &smos)
                        .unwrap();
                }
                other => panic!("unexpected statement {other:?}"),
            }
        }
        g
    }

    #[test]
    fn tasky_genealogy_structure_matches_figure_4() {
        let g = tasky_genealogy();
        assert_eq!(g.version_names(), vec!["Do!", "TasKy", "TasKy2"]);
        // TasKy: 1 table; Do!: 1 table; TasKy2: 2 tables.
        assert_eq!(g.version("TasKy").unwrap().tables.len(), 1);
        assert_eq!(g.version("Do!").unwrap().tables.len(), 1);
        assert_eq!(g.version("TasKy2").unwrap().tables.len(), 2);
        // 5 SMO instances: CREATE, SPLIT, DROP COLUMN, DECOMPOSE, RENAME.
        assert_eq!(g.smo_ids().len(), 5);
        // Task-0 has two outgoing SMOs (SPLIT and DECOMPOSE).
        let task0 = g.resolve("TasKy", "Task").unwrap();
        assert_eq!(g.outgoing(task0).len(), 2);
        // Do!'s Todo is the target of the DROP COLUMN, chained after SPLIT.
        let todo = g.resolve("Do!", "Todo").unwrap();
        let drop_col = g.smo(g.incoming(todo));
        assert_eq!(drop_col.derived.kind, "DROP COLUMN");
        let split_target = drop_col.sources[0];
        assert_eq!(g.smo(g.incoming(split_target)).derived.kind, "SPLIT");
    }

    #[test]
    fn rule_sets_use_globally_unique_relations() {
        let g = tasky_genealogy();
        for smo in g.smos() {
            for rule in smo
                .derived
                .to_tgt
                .rules
                .iter()
                .chain(smo.derived.to_src.rules.iter())
            {
                let text = rule.to_string();
                assert!(
                    !text.contains("src#") && !text.contains("tgt#") && !text.contains("aux#"),
                    "unrenamed relation in {text}"
                );
            }
        }
    }

    #[test]
    fn versions_share_unevolved_table_versions() {
        let mut g = tasky_genealogy();
        // Evolve TasKy2 once more, touching only `Task`.
        let script = parse_script(
            "CREATE SCHEMA VERSION TasKy3 FROM TasKy2 WITH \
             ADD COLUMN done AS 0 INTO Task;",
        )
        .unwrap();
        let Statement::CreateSchemaVersion { name, from, smos } = &script.statements[0] else {
            panic!()
        };
        g.create_schema_version(name, from.as_deref(), smos)
            .unwrap();
        // Author is shared between TasKy2 and TasKy3.
        assert_eq!(
            g.resolve("TasKy2", "Author").unwrap(),
            g.resolve("TasKy3", "Author").unwrap()
        );
        assert_ne!(
            g.resolve("TasKy2", "Task").unwrap(),
            g.resolve("TasKy3", "Task").unwrap()
        );
    }

    #[test]
    fn duplicate_version_and_unknown_table_errors() {
        let mut g = tasky_genealogy();
        assert!(matches!(
            g.create_schema_version("TasKy", None, &[]),
            Err(CatalogError::VersionExists { .. })
        ));
        let script =
            parse_script("CREATE SCHEMA VERSION X FROM TasKy WITH DROP TABLE NoSuch;").unwrap();
        let Statement::CreateSchemaVersion { name, from, smos } = &script.statements[0] else {
            panic!()
        };
        assert!(g
            .create_schema_version(name, from.as_deref(), smos)
            .is_err());
    }

    #[test]
    fn drop_version_respects_dependencies() {
        let mut g = tasky_genealogy();
        // TasKy has children Do! and TasKy2 -> cannot drop.
        assert!(matches!(
            g.drop_schema_version("TasKy"),
            Err(CatalogError::VersionInUse { .. })
        ));
        // Do! is a leaf -> droppable; its Todo table version is orphaned.
        let todo = g.resolve("Do!", "Todo").unwrap();
        let orphans = g.drop_schema_version("Do!").unwrap();
        assert!(orphans.contains(&todo));
        assert!(!g.has_version("Do!"));
        assert!(g.drop_schema_version("Do!").is_err());
    }
}
