//! Property tests for the durable binary codec: encode→decode is identity,
//! and arbitrary corruption (truncated, bit-flipped, over-length input) is
//! rejected with a clean `Err` — the decoder must never panic.
//!
//! Genealogy state is persisted as canonical BiDEL text plus SMO-id vectors,
//! so the `String`/`Vec<u64>` round trips here cover its encoding; the
//! skolem-registry round trip lives next to the registry in
//! `inverda-datalog`.

use inverda_storage::codec::{read_frame, write_frame, Codec, FrameScan};
use inverda_storage::{Key, Relation, Value, WriteBatch};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Raw bits: exercises NaN payloads, -0.0, infinities.
        any::<u64>().prop_map(|bits| Value::Float(f64::from_bits(bits))),
        "[a-zA-Zαβ ]{0,12}".prop_map(Value::text),
    ]
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    prop::collection::btree_map(0u64..256, prop::collection::vec(arb_value(), 3..4), 0..16)
        .prop_map(|rows| {
            let mut rel = Relation::with_columns("T", ["a", "b", "c"]);
            for (k, row) in rows {
                rel.insert(Key(k), row).unwrap();
            }
            rel
        })
}

fn arb_batch() -> impl Strategy<Value = WriteBatch> {
    prop::collection::vec(
        (0u8..5, 0u64..64, prop::collection::vec(arb_value(), 2..3)),
        0..12,
    )
    .prop_map(|ops| {
        let mut b = WriteBatch::new();
        for (tag, k, row) in ops {
            match tag {
                0 => b.insert("T", Key(k), row),
                1 => b.upsert("T", Key(k), row),
                2 => b.delete("T", Key(k)),
                3 => b.delete_if_present("T", Key(k)),
                _ => b.update("T", Key(k), row),
            };
        }
        b
    })
}

/// Byte-level round trip: stronger than `PartialEq` (NaN payloads and `-0.0`
/// must survive exactly), and well-defined for every codec type.
fn assert_roundtrip<T: Codec>(v: &T) {
    let bytes = v.to_bytes();
    let back = T::from_bytes(&bytes).expect("decode of own encoding");
    assert_eq!(back.to_bytes(), bytes, "re-encode differs");
}

proptest! {
    /// encode→decode→encode is byte identity for every durable type.
    #[test]
    fn roundtrip_is_identity(
        v in arb_value(),
        rel in arb_relation(),
        batch in arb_batch(),
        ddl in "[ -~]{0,40}",
        smos in prop::collection::vec(any::<u64>(), 0..8),
    ) {
        assert_roundtrip(&v);
        assert_roundtrip(&rel);
        assert_roundtrip(&batch);
        assert_roundtrip(&ddl.to_string());
        assert_roundtrip(&smos);
    }

    /// Every strict prefix of an encoding is rejected — truncation can never
    /// silently decode.
    #[test]
    fn truncated_input_is_rejected(rel in arb_relation(), cut_seed in any::<u64>()) {
        let bytes = rel.to_bytes();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(Relation::from_bytes(&bytes[..cut]).is_err());
    }

    /// Random byte mutations never panic: the decoder either rejects them
    /// cleanly or produces a well-formed value (one whose own encoding
    /// round-trips — a flipped bit may legitimately build a *different*
    /// valid encoding, e.g. a changed key or payload).
    #[test]
    fn mutated_input_never_panics(
        rel in arb_relation(),
        pos_seed in any::<u64>(),
        xor in 1u8..255,
    ) {
        let mut bytes = rel.to_bytes();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= xor;
        if let Ok(decoded) = Relation::from_bytes(&bytes) {
            let canonical = decoded.to_bytes();
            prop_assert_eq!(Relation::from_bytes(&canonical).unwrap().to_bytes(), canonical);
        }
    }

    /// A length field inflated beyond the buffer is rejected before any
    /// allocation is sized from it.
    #[test]
    fn over_length_counts_are_rejected(n in 1u32..u32::MAX) {
        let bytes = n.to_le_bytes().to_vec();
        prop_assert!(Vec::<u64>::from_bytes(&bytes).is_err());
    }

    /// Frame scanning: intact frames are recovered, truncated tails read as
    /// Torn, payload bit flips as Corrupt.
    #[test]
    fn frames_detect_torn_and_corrupt(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        cut_seed in any::<u64>(),
        flip_seed in any::<u64>(),
    ) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload);
        match read_frame(&framed) {
            FrameScan::Ok { payload: p, consumed } => {
                prop_assert_eq!(p, payload.as_slice());
                prop_assert_eq!(consumed, framed.len());
            }
            other => prop_assert!(false, "intact frame read as {:?}", other),
        }
        let cut = (cut_seed % framed.len() as u64) as usize;
        prop_assert_eq!(read_frame(&framed[..cut]), if cut == 0 {
            FrameScan::End
        } else {
            FrameScan::Torn
        });
        if !payload.is_empty() {
            let pos = 8 + (flip_seed % payload.len() as u64) as usize;
            framed[pos] ^= 0x80;
            prop_assert_eq!(read_frame(&framed), FrameScan::Corrupt);
        }
    }
}
