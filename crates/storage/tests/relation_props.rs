//! Property tests on the storage substrate's core invariants.

use inverda_storage::{Key, Relation, Storage, TableSchema, Value, WriteBatch};
use proptest::prelude::*;

fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    (any::<i64>(), "[a-z]{0,6}").prop_map(|(i, s)| vec![Value::Int(i), Value::text(s)])
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    prop::collection::btree_map(0u64..64, arb_row(), 0..24).prop_map(|rows| {
        let mut rel = Relation::with_columns("T", ["a", "b"]);
        for (k, row) in rows {
            rel.insert(Key(k), row).unwrap();
        }
        rel
    })
}

proptest! {
    /// `diff` is exact: applying the delta of (new vs old) onto old yields new.
    #[test]
    fn diff_apply_round_trip(old in arb_relation(), new in arb_relation()) {
        let delta = new.diff(&old);
        let mut patched = old.clone();
        for (k, _) in &delta.deletes {
            patched.delete(*k).unwrap();
        }
        for (k, row) in &delta.inserts {
            patched.insert(*k, row.clone()).unwrap();
        }
        for (k, _, row) in &delta.updates {
            patched.update(*k, row.clone()).unwrap();
        }
        prop_assert_eq!(patched, new);
    }

    /// diff against self is empty; minus removes exactly the identical rows.
    #[test]
    fn diff_self_is_empty_and_minus_is_sound(rel in arb_relation(), other in arb_relation()) {
        prop_assert!(rel.diff(&rel).is_empty());
        let m = rel.minus(&other);
        for (k, row) in m.iter() {
            prop_assert_ne!(other.get(k), Some(row));
        }
        for (k, row) in rel.iter() {
            if other.get(k) != Some(row) {
                prop_assert!(m.contains_key(k));
            }
        }
    }

    /// A failing batch leaves storage exactly as before (atomicity).
    #[test]
    fn failed_batches_are_fully_rolled_back(
        rows in prop::collection::vec((0u64..32, arb_row()), 1..12),
        dup_at in 0usize..12,
    ) {
        let storage = Storage::new();
        storage
            .create_table(TableSchema::new("T", ["a", "b"]).unwrap())
            .unwrap();
        // Seed one row we will duplicate-insert to force a failure.
        let mut seed = WriteBatch::new();
        seed.insert("T", Key(1000), vec![Value::Int(0), Value::text("seed")]);
        storage.apply(&seed).unwrap();
        let before = storage.snapshot("T").unwrap();

        let mut batch = WriteBatch::new();
        for (i, (k, row)) in rows.iter().enumerate() {
            if i == dup_at % rows.len() {
                batch.insert("T", Key(1000), row.clone()); // will collide
            }
            batch.upsert("T", Key(*k), row.clone());
        }
        prop_assert!(storage.apply(&batch).is_err());
        prop_assert_eq!(storage.snapshot("T").unwrap(), before);
    }

    /// Projection keeps keys and column contents aligned.
    #[test]
    fn projection_preserves_rows(rel in arb_relation()) {
        let p = rel.project(&["b"]).unwrap();
        prop_assert_eq!(p.len(), rel.len());
        for (k, row) in rel.iter() {
            prop_assert_eq!(p.get(k).unwrap()[0].clone(), row[1].clone());
        }
    }
}
