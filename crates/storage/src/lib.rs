//! # inverda-storage
//!
//! An in-memory relational storage engine: the substrate underneath the
//! InVerDa co-existing-schema-versions engine.
//!
//! The paper prototypes InVerDa on top of PostgreSQL 9.4; the generated delta
//! code (views and triggers) is executed by the host DBMS. This crate plays
//! the role of that host: it stores *physical* tables, evaluates the scalar
//! expressions that appear in SMO parameters (split conditions, column
//! functions), and provides atomic write batches used by the propagation
//! engine and the migration procedure.
//!
//! Design points mirrored from the paper:
//!
//! * Every tuple carries an InVerDa-managed identifier `p` ([`Key`]) that is
//!   unique across versions; it bridges the multiset semantics of SQL and the
//!   set semantics of Datalog (Section 4 of the paper).
//! * Relations iterate in deterministic key order so that rule evaluation and
//!   benchmarks are reproducible.
//! * Sequences hand out fresh keys and feed the skolem `idT(B)` functions of
//!   the id-generating SMOs.

#![warn(missing_docs)]

pub mod batch;
pub mod codec;
pub mod engine;
pub mod error;
pub mod expr;
pub mod relation;
pub mod schema;
pub mod value;

pub use batch::{WriteBatch, WriteOp};
pub use codec::{crc32, read_frame, write_frame, Codec, FrameScan, Reader};
pub use engine::{SequenceSet, Storage};
pub use error::StorageError;
pub use expr::{BinaryOp, BoundExpr, CmpOp, Expr, NamedRow, RowContext};
pub use relation::{ColumnIndex, IndexCache, Relation, RelationDelta, Row};
pub use schema::{resolve_column, TableSchema};
pub use value::{Key, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
