//! Scalar expressions: the `cR`/`cS` split conditions, join conditions
//! `c(A,B)`, and column functions `f(r1,…,rn)` of BiDEL SMOs.
//!
//! Expressions are evaluated against a [`RowContext`] binding column names to
//! values, which lets one expression be evaluated against tuples of any table
//! version that provides the referenced attributes.

use crate::error::StorageError;
use crate::value::Value;
use crate::Result;
use std::collections::BTreeMap;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to two values. `Null` compared with anything yields `false`
    /// (SQL's UNKNOWN collapsed for filtering), except `Eq`/`Ne` between two
    /// nulls which follow `IS [NOT] DISTINCT FROM` semantics so that ω
    /// markers can be tested.
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        use CmpOp::*;
        match (a.is_null(), b.is_null()) {
            (true, true) => matches!(self, Eq | Le | Ge),
            (true, false) | (false, true) => matches!(self, Ne),
            (false, false) => match self {
                Eq => a == b,
                Ne => a != b,
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
            },
        }
    }

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Binary arithmetic / string operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+` (numeric addition; string concatenation when both sides text)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||` string concatenation
    Concat,
}

impl BinaryOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column of the current row by name.
    Column(String),
    /// A literal value.
    Lit(Value),
    /// Comparison of two sub-expressions.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Binary arithmetic / concat.
    Binary(Box<Expr>, BinaryOp, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `IS NULL` test.
    IsNull(Box<Expr>),
    /// Built-in scalar function call (`lower`, `upper`, `abs`, `length`,
    /// `coalesce`, `concat`).
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Eq, Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ne, Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Lt, Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Gt, Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ge, Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Le, Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Evaluate against a row context.
    pub fn eval(&self, ctx: &dyn RowContext) -> Result<Value> {
        match self {
            Expr::Column(name) => ctx
                .value_of(name)
                .ok_or_else(|| StorageError::expr(format!("unbound column '{name}'"))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(a, op, b) => {
                let va = a.eval(ctx)?;
                let vb = b.eval(ctx)?;
                Ok(Value::Bool(op.apply(&va, &vb)))
            }
            Expr::Binary(a, op, b) => {
                let va = a.eval(ctx)?;
                let vb = b.eval(ctx)?;
                eval_binary(*op, &va, &vb)
            }
            Expr::And(a, b) => Ok(Value::Bool(
                a.eval(ctx)?.is_truthy() && b.eval(ctx)?.is_truthy(),
            )),
            Expr::Or(a, b) => Ok(Value::Bool(
                a.eval(ctx)?.is_truthy() || b.eval(ctx)?.is_truthy(),
            )),
            Expr::Not(a) => Ok(Value::Bool(!a.eval(ctx)?.is_truthy())),
            Expr::IsNull(a) => Ok(Value::Bool(a.eval(ctx)?.is_null())),
            Expr::Call(name, args) => {
                let vals: Vec<Value> = args.iter().map(|e| e.eval(ctx)).collect::<Result<_>>()?;
                eval_call(name, &vals)
            }
        }
    }

    /// Evaluate as a boolean condition.
    pub fn matches(&self, ctx: &dyn RowContext) -> Result<bool> {
        Ok(self.eval(ctx)?.is_truthy())
    }

    /// Column names referenced anywhere in the expression (sorted, deduped).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Lit(_) => {}
            Expr::Cmp(a, _, b) | Expr::Binary(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) | Expr::IsNull(a) => a.collect_columns(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Rewrite column references via the mapping (used when an SMO renames
    /// columns between versions).
    pub fn rename_columns(&self, mapping: &BTreeMap<String, String>) -> Expr {
        match self {
            Expr::Column(c) => Expr::Column(mapping.get(c).cloned().unwrap_or_else(|| c.clone())),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(a, op, b) => Expr::Cmp(
                Box::new(a.rename_columns(mapping)),
                *op,
                Box::new(b.rename_columns(mapping)),
            ),
            Expr::Binary(a, op, b) => Expr::Binary(
                Box::new(a.rename_columns(mapping)),
                *op,
                Box::new(b.rename_columns(mapping)),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(a.rename_columns(mapping)),
                Box::new(b.rename_columns(mapping)),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.rename_columns(mapping)),
                Box::new(b.rename_columns(mapping)),
            ),
            Expr::Not(a) => Expr::Not(Box::new(a.rename_columns(mapping))),
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.rename_columns(mapping))),
            Expr::Call(name, args) => Expr::Call(
                name.clone(),
                args.iter().map(|a| a.rename_columns(mapping)).collect(),
            ),
        }
    }
}

fn eval_binary(op: BinaryOp, a: &Value, b: &Value) -> Result<Value> {
    use BinaryOp::*;
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Concat => Ok(Value::text(format!("{}{}", display_raw(a), display_raw(b)))),
        Add if matches!((a, b), (Value::Text(_), Value::Text(_))) => {
            Ok(Value::text(format!("{}{}", display_raw(a), display_raw(b))))
        }
        _ => match (a, b) {
            (Value::Int(x), Value::Int(y)) => match op {
                Add => Ok(Value::Int(x.wrapping_add(*y))),
                Sub => Ok(Value::Int(x.wrapping_sub(*y))),
                Mul => Ok(Value::Int(x.wrapping_mul(*y))),
                Div => {
                    if *y == 0 {
                        Err(StorageError::expr("division by zero"))
                    } else {
                        Ok(Value::Int(x / y))
                    }
                }
                Mod => {
                    if *y == 0 {
                        Err(StorageError::expr("modulo by zero"))
                    } else {
                        Ok(Value::Int(x % y))
                    }
                }
                Concat => unreachable!(),
            },
            _ => {
                let (x, y) = match (a.as_float(), b.as_float()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => {
                        return Err(StorageError::expr(format!(
                            "cannot apply {} to {a} and {b}",
                            op.sql()
                        )))
                    }
                };
                match op {
                    Add => Ok(Value::Float(x + y)),
                    Sub => Ok(Value::Float(x - y)),
                    Mul => Ok(Value::Float(x * y)),
                    Div => Ok(Value::Float(x / y)),
                    Mod => Ok(Value::Float(x % y)),
                    Concat => unreachable!(),
                }
            }
        },
    }
}

fn display_raw(v: &Value) -> String {
    match v {
        Value::Text(t) => t.to_string(),
        other => other.to_string(),
    }
}

fn eval_call(name: &str, args: &[Value]) -> Result<Value> {
    match (name, args) {
        ("lower", [Value::Text(t)]) => Ok(Value::text(t.to_lowercase())),
        ("upper", [Value::Text(t)]) => Ok(Value::text(t.to_uppercase())),
        ("length", [Value::Text(t)]) => Ok(Value::Int(t.chars().count() as i64)),
        ("abs", [Value::Int(i)]) => Ok(Value::Int(i.abs())),
        ("abs", [Value::Float(f)]) => Ok(Value::Float(f.abs())),
        ("coalesce", vals) => Ok(vals
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        ("concat", vals) => Ok(Value::text(
            vals.iter().map(display_raw).collect::<String>(),
        )),
        (_, [v]) if v.is_null() => Ok(Value::Null),
        _ => Err(StorageError::expr(format!(
            "unknown function or bad arguments: {name}/{}",
            args.len()
        ))),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(a, op, b) => write!(f, "{a} {} {b}", op.sql()),
            Expr::Binary(a, op, b) => write!(f, "({a} {} {b})", op.sql()),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "NOT ({a})"),
            Expr::IsNull(a) => write!(f, "{a} IS NULL"),
            Expr::Call(name, args) => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{name}({})", parts.join(", "))
            }
        }
    }
}

/// An expression with column references resolved to row **positions** — the
/// per-row form the query layer evaluates residual predicates in.
///
/// [`BoundExpr::bind`] resolves every [`Expr::Column`] against a schema's
/// column list once; evaluation then borrows the row: column references and
/// literals are served as `Cow::Borrowed`, so filtering a relation allocates
/// only for *computed* sub-expressions (arithmetic, function calls), never
/// for the common `col <op> literal` shape. Semantics are identical to
/// [`Expr::eval`] over a [`NamedRow`] of the same schema — both go through
/// the same comparison/arithmetic/function helpers — except that an unknown
/// column is reported at bind time instead of per row.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Reference to a row position.
    Column(usize),
    /// A literal value.
    Lit(Value),
    /// Comparison of two sub-expressions.
    Cmp(Box<BoundExpr>, CmpOp, Box<BoundExpr>),
    /// Binary arithmetic / concat.
    Binary(Box<BoundExpr>, BinaryOp, Box<BoundExpr>),
    /// Logical conjunction.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical disjunction.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical negation.
    Not(Box<BoundExpr>),
    /// `IS NULL` test.
    IsNull(Box<BoundExpr>),
    /// Built-in scalar function call.
    Call(String, Vec<BoundExpr>),
}

impl BoundExpr {
    /// Resolve `expr`'s column references against `columns`. `table` only
    /// labels the error for unknown columns.
    pub fn bind(expr: &Expr, table: &str, columns: &[String]) -> Result<BoundExpr> {
        Ok(match expr {
            Expr::Column(c) => BoundExpr::Column(crate::schema::resolve_column(table, columns, c)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Cmp(a, op, b) => BoundExpr::Cmp(
                Box::new(BoundExpr::bind(a, table, columns)?),
                *op,
                Box::new(BoundExpr::bind(b, table, columns)?),
            ),
            Expr::Binary(a, op, b) => BoundExpr::Binary(
                Box::new(BoundExpr::bind(a, table, columns)?),
                *op,
                Box::new(BoundExpr::bind(b, table, columns)?),
            ),
            Expr::And(a, b) => BoundExpr::And(
                Box::new(BoundExpr::bind(a, table, columns)?),
                Box::new(BoundExpr::bind(b, table, columns)?),
            ),
            Expr::Or(a, b) => BoundExpr::Or(
                Box::new(BoundExpr::bind(a, table, columns)?),
                Box::new(BoundExpr::bind(b, table, columns)?),
            ),
            Expr::Not(a) => BoundExpr::Not(Box::new(BoundExpr::bind(a, table, columns)?)),
            Expr::IsNull(a) => BoundExpr::IsNull(Box::new(BoundExpr::bind(a, table, columns)?)),
            Expr::Call(name, args) => BoundExpr::Call(
                name.clone(),
                args.iter()
                    .map(|a| BoundExpr::bind(a, table, columns))
                    .collect::<Result<_>>()?,
            ),
        })
    }

    /// Evaluate against a borrowed row. Column references and literals come
    /// back borrowed; only computed sub-expressions allocate.
    pub fn eval<'a>(&'a self, row: &'a [Value]) -> Result<std::borrow::Cow<'a, Value>> {
        use std::borrow::Cow;
        match self {
            BoundExpr::Column(i) => row
                .get(*i)
                .map(Cow::Borrowed)
                .ok_or_else(|| StorageError::expr(format!("row too short for bound column {i}"))),
            BoundExpr::Lit(v) => Ok(Cow::Borrowed(v)),
            BoundExpr::Cmp(a, op, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                Ok(Cow::Owned(Value::Bool(op.apply(&va, &vb))))
            }
            BoundExpr::Binary(a, op, b) => {
                let (va, vb) = (a.eval(row)?, b.eval(row)?);
                eval_binary(*op, &va, &vb).map(Cow::Owned)
            }
            BoundExpr::And(a, b) => Ok(Cow::Owned(Value::Bool(
                a.eval(row)?.is_truthy() && b.eval(row)?.is_truthy(),
            ))),
            BoundExpr::Or(a, b) => Ok(Cow::Owned(Value::Bool(
                a.eval(row)?.is_truthy() || b.eval(row)?.is_truthy(),
            ))),
            BoundExpr::Not(a) => Ok(Cow::Owned(Value::Bool(!a.eval(row)?.is_truthy()))),
            BoundExpr::IsNull(a) => Ok(Cow::Owned(Value::Bool(a.eval(row)?.is_null()))),
            BoundExpr::Call(name, args) => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|e| e.eval(row).map(Cow::into_owned))
                    .collect::<Result<_>>()?;
                eval_call(name, &vals).map(Cow::Owned)
            }
        }
    }

    /// Evaluate as a boolean condition over a borrowed row.
    pub fn matches(&self, row: &[Value]) -> Result<bool> {
        Ok(self.eval(row)?.is_truthy())
    }
}

/// Binds column names to values during expression evaluation.
pub trait RowContext {
    /// The value bound to `column`, if any.
    fn value_of(&self, column: &str) -> Option<Value>;
}

impl RowContext for BTreeMap<String, Value> {
    fn value_of(&self, column: &str) -> Option<Value> {
        self.get(column).cloned()
    }
}

/// Context pairing a schema's column list with one row.
pub struct NamedRow<'a> {
    /// Column names, aligned with `row`.
    pub columns: &'a [String],
    /// The row payload.
    pub row: &'a [Value],
}

impl RowContext for NamedRow<'_> {
    fn value_of(&self, column: &str) -> Option<Value> {
        self.columns
            .iter()
            .position(|c| c == column)
            .map(|i| self.row[i].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn split_condition_prio_eq_1() {
        // The paper's Do! split: SPLIT TABLE Task INTO Todo WITH prio=1
        let cond = Expr::col("prio").eq(Expr::lit(1));
        assert!(cond.matches(&ctx(&[("prio", Value::Int(1))])).unwrap());
        assert!(!cond.matches(&ctx(&[("prio", Value::Int(3))])).unwrap());
    }

    #[test]
    fn null_comparisons_follow_distinct_from_semantics() {
        let eq = Expr::col("a").eq(Expr::col("b"));
        let ne = Expr::col("a").ne(Expr::col("b"));
        let both_null = ctx(&[("a", Value::Null), ("b", Value::Null)]);
        let one_null = ctx(&[("a", Value::Null), ("b", Value::Int(1))]);
        assert!(eq.matches(&both_null).unwrap());
        assert!(!ne.matches(&both_null).unwrap());
        assert!(!eq.matches(&one_null).unwrap());
        assert!(ne.matches(&one_null).unwrap());
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let e = Expr::Binary(
            Box::new(Expr::lit(7)),
            BinaryOp::Add,
            Box::new(Expr::lit(5)),
        );
        assert_eq!(e.eval(&ctx(&[])).unwrap(), Value::Int(12));
        let div = Expr::Binary(
            Box::new(Expr::lit(1)),
            BinaryOp::Div,
            Box::new(Expr::lit(0)),
        );
        assert!(div.eval(&ctx(&[])).is_err());
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let e = Expr::Binary(
            Box::new(Expr::col("a")),
            BinaryOp::Mul,
            Box::new(Expr::lit(2)),
        );
        assert_eq!(e.eval(&ctx(&[("a", Value::Null)])).unwrap(), Value::Null);
    }

    #[test]
    fn functions() {
        let c = ctx(&[("name", Value::text("Ann"))]);
        assert_eq!(
            Expr::Call("lower".into(), vec![Expr::col("name")])
                .eval(&c)
                .unwrap(),
            Value::text("ann")
        );
        assert_eq!(
            Expr::Call("length".into(), vec![Expr::col("name")])
                .eval(&c)
                .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Expr::Call(
                "coalesce".into(),
                vec![Expr::lit(Value::Null), Expr::lit(5)]
            )
            .eval(&c)
            .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            Expr::Call("concat".into(), vec![Expr::col("name"), Expr::lit("!")])
                .eval(&c)
                .unwrap(),
            Value::text("Ann!")
        );
    }

    #[test]
    fn referenced_columns_collects_and_dedups() {
        let e = Expr::col("b")
            .eq(Expr::lit(1))
            .and(Expr::col("a").gt(Expr::col("b")));
        assert_eq!(
            e.referenced_columns(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn rename_columns_rewrites_refs() {
        let e = Expr::col("author").eq(Expr::lit("Ann"));
        let mut m = BTreeMap::new();
        m.insert("author".to_string(), "name".to_string());
        assert_eq!(e.rename_columns(&m), Expr::col("name").eq(Expr::lit("Ann")));
    }

    #[test]
    fn named_row_context() {
        let cols = vec!["a".to_string(), "b".to_string()];
        let row = vec![Value::Int(1), Value::text("x")];
        let ctx = NamedRow {
            columns: &cols,
            row: &row,
        };
        assert_eq!(ctx.value_of("b"), Some(Value::text("x")));
        assert_eq!(ctx.value_of("zz"), None);
    }

    #[test]
    fn unbound_column_is_an_error() {
        let e = Expr::col("missing");
        assert!(e.eval(&ctx(&[])).is_err());
    }

    #[test]
    fn bound_expr_agrees_with_named_row_eval() {
        let columns = vec!["a".to_string(), "b".to_string(), "t".to_string()];
        let exprs = [
            Expr::col("a").eq(Expr::lit(1)),
            Expr::col("a").lt(Expr::col("b")),
            Expr::col("b")
                .ge(Expr::lit(2))
                .and(Expr::col("t").ne(Expr::lit("x"))),
            Expr::IsNull(Box::new(Expr::col("t"))),
            Expr::Binary(
                Box::new(Expr::col("a")),
                BinaryOp::Add,
                Box::new(Expr::col("b")),
            )
            .gt(Expr::lit(2)),
            Expr::Call("length".into(), vec![Expr::col("t")]).eq(Expr::lit(1)),
        ];
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Int(2), Value::text("x")],
            vec![Value::Int(3), Value::Float(3.0), Value::text("yy")],
            vec![Value::Null, Value::Int(0), Value::Null],
        ];
        for e in &exprs {
            let bound = BoundExpr::bind(e, "T", &columns).unwrap();
            for row in &rows {
                let named = NamedRow {
                    columns: &columns,
                    row,
                };
                assert_eq!(
                    bound.matches(row).unwrap(),
                    e.matches(&named).unwrap(),
                    "expr {e} on {row:?}"
                );
            }
        }
    }

    #[test]
    fn bound_expr_reports_unknown_columns_at_bind_time() {
        let columns = vec!["a".to_string()];
        let err = BoundExpr::bind(&Expr::col("nope").eq(Expr::lit(1)), "T", &columns).unwrap_err();
        assert!(matches!(err, StorageError::UnknownColumn { .. }));
    }

    #[test]
    fn bound_expr_borrows_plain_columns() {
        use std::borrow::Cow;
        let columns = vec!["a".to_string()];
        let bound = BoundExpr::bind(&Expr::col("a"), "T", &columns).unwrap();
        let row = vec![Value::text("payload")];
        assert!(matches!(bound.eval(&row).unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::col("prio")
            .eq(Expr::lit(1))
            .and(Expr::col("a").lt(Expr::col("b")));
        assert_eq!(e.to_string(), "(prio = 1 AND a < b)");
    }
}
