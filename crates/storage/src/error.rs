//! Error type for the storage substrate.

use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists.
    TableExists {
        /// Offending table name.
        table: String,
    },
    /// The named table does not exist.
    UnknownTable {
        /// Missing table name.
        table: String,
    },
    /// The named column does not exist in the table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column name.
        column: String,
    },
    /// A column name occurs twice in one schema.
    DuplicateColumn {
        /// Offending table name.
        table: String,
        /// Duplicated column name.
        column: String,
    },
    /// A row's arity does not match the table schema.
    ArityMismatch {
        /// Table written to.
        table: String,
        /// Columns the schema defines.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// Insert with a key that is already present.
    DuplicateKey {
        /// Table written to.
        table: String,
        /// The colliding key value.
        key: u64,
    },
    /// Update/delete addressed a key that is not present.
    MissingKey {
        /// Table written to.
        table: String,
        /// The missing key value.
        key: u64,
    },
    /// Expression evaluation failure (unknown column, bad operand types…).
    Expression {
        /// Human-readable description.
        message: String,
    },
    /// An IO operation in the durability layer failed. The message is the
    /// underlying OS error rendered to text so the variant stays `Clone` +
    /// `Eq` like the rest of the enum.
    Io {
        /// What the engine was doing (e.g. "append wal record").
        context: String,
        /// The rendered OS error.
        message: String,
    },
    /// Malformed bytes fed to the binary codec (truncated, bit-flipped, or
    /// over-length input).
    Codec {
        /// Human-readable description of the malformation.
        message: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists { table } => write!(f, "table '{table}' already exists"),
            StorageError::UnknownTable { table } => write!(f, "unknown table '{table}'"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            StorageError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column '{column}' in table '{table}'")
            }
            StorageError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch on table '{table}': schema has {expected} columns, row has {got}"
            ),
            StorageError::DuplicateKey { table, key } => {
                write!(f, "duplicate key #{key} in table '{table}'")
            }
            StorageError::MissingKey { table, key } => {
                write!(f, "missing key #{key} in table '{table}'")
            }
            StorageError::Expression { message } => write!(f, "expression error: {message}"),
            StorageError::Io { context, message } => {
                write!(f, "io error while {context}: {message}")
            }
            StorageError::Codec { message } => write!(f, "codec error: {message}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    /// Convenience constructor for expression errors.
    pub fn expr(message: impl Into<String>) -> Self {
        StorageError::Expression {
            message: message.into(),
        }
    }

    /// Convenience constructor for IO errors: what the engine was doing plus
    /// the underlying error, rendered.
    pub fn io(context: impl Into<String>, err: impl std::fmt::Display) -> Self {
        StorageError::Io {
            context: context.into(),
            message: err.to_string(),
        }
    }

    /// Convenience constructor for codec errors.
    pub fn codec(message: impl Into<String>) -> Self {
        StorageError::Codec {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::UnknownColumn {
            table: "Task".into(),
            column: "prio".into(),
        };
        assert!(e.to_string().contains("prio"));
        assert!(e.to_string().contains("Task"));
        let e = StorageError::ArityMismatch {
            table: "T".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3'));
    }
}
