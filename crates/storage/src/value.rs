//! Scalar values and tuple identifiers.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The InVerDa-managed tuple identifier `p`.
///
/// The paper (Section 4): "All tables have an attribute `p`, an
/// InVerDa-managed identifier to uniquely identify tuples across versions."
/// Keys are drawn from a single global sequence so that a tuple inserted in
/// any schema version never collides with a tuple inserted in another one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A scalar value stored in a relation.
///
/// `Null` doubles as the paper's ω (omega) marker used by the outer-join /
/// decompose SMOs to fill gaps ("we use the null value ω_R", Appendix B.2).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / the paper's ω marker.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with total ordering (NaN sorts last, -0.0 == 0.0).
    Float(f64),
    /// Interned UTF-8 text. `Arc<str>` keeps row clones cheap: propagation
    /// through SMO chains copies rows between side states frequently.
    Text(Arc<str>),
}

impl Value {
    /// Text constructor from anything string-like.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// True iff the value is `Null` (ω).
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness used by condition evaluation: SQL three-valued logic is
    /// collapsed to two values — `Null` and `false` are both "not satisfied",
    /// matching how a `WHERE` clause filters.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Text(t) => !t.is_empty(),
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text accessor.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Float accessor with int widening.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Rank used for cross-type total ordering.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Text(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => total_f64_cmp(*a, *b),
            // Numeric cross-comparison: ints and floats compare numerically
            // so `prio = 1` matches both Int(1) and Float(1.0).
            (Int(a), Float(b)) => total_f64_cmp(*a as f64, *b),
            (Float(a), Int(b)) => total_f64_cmp(*a, *b as f64),
            (Text(a), Text(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equal, so ints
            // always hash through their canonical f64 bit pattern — the same
            // projection `cmp` uses for Int/Float comparison. Distinct huge
            // ints (beyond 2^53) may collide on one f64 pattern; that is a
            // hash collision resolved through `Eq`, not a correctness issue,
            // and it keeps index probes agreeing exactly with scans.
            Value::Int(i) => {
                2u8.hash(state);
                canonical_f64_bits(*i as f64).hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                canonical_f64_bits(*f).hash(state);
            }
            Value::Text(t) => {
                4u8.hash(state);
                t.hash(state);
            }
        }
    }
}

fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    // Canonicalize so -0.0 == 0.0 and all NaNs compare equal (and last).
    f64::from_bits(canonical_f64_bits(a)).total_cmp(&f64::from_bits(canonical_f64_bits(b)))
}

fn canonical_f64_bits(f: f64) -> u64 {
    // Normalize -0.0 to 0.0 and all NaNs to one pattern.
    if f == 0.0 {
        0f64.to_bits()
    } else if f.is_nan() {
        f64::NAN.to_bits()
    } else {
        f.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(t) => write!(f, "'{t}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_numeric_equality() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Int(1), Value::Float(1.5));
        assert_eq!(hash_of(&Value::Int(1)), hash_of(&Value::Float(1.0)));
    }

    #[test]
    fn null_is_smallest_and_equal_to_itself() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::text(""));
    }

    #[test]
    fn huge_int_and_equal_float_hash_alike() {
        // (1<<53)+1 rounds to 2^53 as f64; cmp says it equals Float(2^53),
        // so the hashes must match or hash-index probes diverge from scans.
        let i = Value::Int((1i64 << 53) + 1);
        let f = Value::Float(9_007_199_254_740_992.0);
        assert_eq!(i, f);
        assert_eq!(hash_of(&i), hash_of(&f));
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn truthiness_matches_where_clause_semantics() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Int(3).is_truthy());
        assert!(!Value::Int(0).is_truthy());
    }

    #[test]
    fn text_ordering_is_lexicographic() {
        assert!(Value::text("Ann") < Value::text("Ben"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::text("x").to_string(), "'x'");
        assert_eq!(Key(12).to_string(), "#12");
    }

    #[test]
    fn cross_type_order_is_total_and_stable() {
        let mut vals = vec![
            Value::text("a"),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(1.5),
                Value::Int(2),
                Value::text("a"),
            ]
        );
    }
}
