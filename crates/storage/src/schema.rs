//! Table schemas: a name plus an ordered list of column names.
//!
//! InVerDa works purely on the relational structure — the paper restricts
//! BiDEL's expressiveness to the relational algebra and defers constraint
//! evolution to future work — so a schema here is just the column list.
//! The identifier column `p` is implicit and never appears in the list.

use crate::error::StorageError;
use crate::Result;
use std::fmt;

/// Resolve a column name against a column list, with the standard
/// [`UnknownColumn`](crate::StorageError::UnknownColumn) error — shared by
/// bound-expression compilation and the query layer's projection/ordering
/// resolution, so name lookup and error shape never diverge.
pub fn resolve_column(table: &str, columns: &[String], name: &str) -> Result<usize> {
    columns
        .iter()
        .position(|col| col == name)
        .ok_or_else(|| StorageError::UnknownColumn {
            table: table.to_string(),
            column: name.to_string(),
        })
}

/// Schema of one (physical or virtual) table: its name and column names.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableSchema {
    /// Table name, unique within one storage namespace.
    pub name: String,
    /// Ordered column names (the implicit key column `p` is not listed).
    pub columns: Vec<String>,
}

impl TableSchema {
    /// Create a schema; column names must be unique.
    pub fn new(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self> {
        let name = name.into();
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].contains(c) {
                return Err(StorageError::DuplicateColumn {
                    table: name,
                    column: c.clone(),
                });
            }
        }
        Ok(TableSchema { name, columns })
    }

    /// Number of columns (excluding the implicit key).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by name.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }

    /// Whether the schema contains the column.
    pub fn has_column(&self, column: &str) -> bool {
        self.column_index(column).is_some()
    }

    /// A copy with the table renamed.
    pub fn renamed(&self, new_name: impl Into<String>) -> Self {
        TableSchema {
            name: new_name.into(),
            columns: self.columns.clone(),
        }
    }

    /// A copy with one column renamed.
    pub fn with_renamed_column(&self, old: &str, new: &str) -> Result<Self> {
        let idx = self
            .column_index(old)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.name.clone(),
                column: old.to_string(),
            })?;
        if self.has_column(new) {
            return Err(StorageError::DuplicateColumn {
                table: self.name.clone(),
                column: new.to_string(),
            });
        }
        let mut columns = self.columns.clone();
        columns[idx] = new.to_string();
        Ok(TableSchema {
            name: self.name.clone(),
            columns,
        })
    }

    /// A copy with one column appended.
    pub fn with_column(&self, column: &str) -> Result<Self> {
        if self.has_column(column) {
            return Err(StorageError::DuplicateColumn {
                table: self.name.clone(),
                column: column.to_string(),
            });
        }
        let mut columns = self.columns.clone();
        columns.push(column.to_string());
        Ok(TableSchema {
            name: self.name.clone(),
            columns,
        })
    }

    /// A copy with one column removed.
    pub fn without_column(&self, column: &str) -> Result<Self> {
        let idx = self
            .column_index(column)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.name.clone(),
                column: column.to_string(),
            })?;
        let mut columns = self.columns.clone();
        columns.remove(idx);
        Ok(TableSchema {
            name: self.name.clone(),
            columns,
        })
    }
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.columns.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_columns() {
        assert!(TableSchema::new("t", ["a", "b", "a"]).is_err());
    }

    #[test]
    fn column_lookup() {
        let s = TableSchema::new("Task", ["author", "task", "prio"]).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("task"), Some(1));
        assert!(s.has_column("prio"));
        assert!(!s.has_column("missing"));
    }

    #[test]
    fn rename_column() {
        let s = TableSchema::new("Author", ["author"]).unwrap();
        let s2 = s.with_renamed_column("author", "name").unwrap();
        assert_eq!(s2.columns, vec!["name"]);
        assert!(s.with_renamed_column("nope", "x").is_err());
        let s3 = TableSchema::new("T", ["a", "b"]).unwrap();
        assert!(s3.with_renamed_column("a", "b").is_err());
    }

    #[test]
    fn add_and_drop_column() {
        let s = TableSchema::new("T", ["a"]).unwrap();
        let s2 = s.with_column("b").unwrap();
        assert_eq!(s2.columns, vec!["a", "b"]);
        assert!(s2.with_column("a").is_err());
        let s3 = s2.without_column("a").unwrap();
        assert_eq!(s3.columns, vec!["b"]);
        assert!(s3.without_column("zz").is_err());
    }

    #[test]
    fn display() {
        let s = TableSchema::new("Todo", ["author", "task"]).unwrap();
        assert_eq!(s.to_string(), "Todo(author, task)");
    }
}
