//! Hand-rolled binary codec for durable state.
//!
//! The durability layer (WAL + checkpoints in `inverda-core`) persists
//! storage values with a small, self-describing-enough binary format built
//! here, next to [`Value`] and [`Relation`] — no serde, no external crates.
//! Design points:
//!
//! * **Length-prefixed, fixed-endian primitives.** All integers are
//!   little-endian; lengths are `u32`. Floats are stored as their *raw*
//!   `f64` bits (`to_bits`/`from_bits`), not the canonicalised bits used by
//!   `Value`'s ordering, so a decode reproduces the exact in-memory value.
//! * **Defensive decoding.** Every read is bounds-checked; corrupt input
//!   (truncated, bit-flipped, over-length) yields a clean
//!   [`StorageError::Codec`] — the decoder never panics and never attempts
//!   an allocation larger than the input could justify.
//! * **CRC-framed records.** [`write_frame`]/[`read_frame`] wrap a payload
//!   as `[len: u32][crc32: u32][payload]`. The CRC covers the payload only;
//!   a frame that ends early or fails its checksum is reported distinctly
//!   so the WAL can apply its torn-tail truncation rule.

use crate::batch::{WriteBatch, WriteOp};
use crate::error::StorageError;
use crate::relation::{Relation, Row};
use crate::schema::TableSchema;
use crate::value::{Key, Value};
use crate::Result;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, table-driven)
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes` — the checksum used by the WAL record framing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Outcome of scanning for one CRC frame at the start of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameScan<'a> {
    /// A complete, checksum-valid frame; `consumed` counts header + payload.
    Ok {
        /// The frame's payload bytes.
        payload: &'a [u8],
        /// Total bytes the frame occupies (8-byte header + payload).
        consumed: usize,
    },
    /// The buffer ends before the frame does — a torn tail.
    Torn,
    /// The frame is complete but its checksum does not match.
    Corrupt,
    /// The buffer is empty — a clean end of log.
    End,
}

/// Append one `[len][crc][payload]` frame to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Scan the frame starting at `buf[0]`. Never panics; a length field that
/// overruns the buffer reads as [`FrameScan::Torn`].
pub fn read_frame(buf: &[u8]) -> FrameScan<'_> {
    if buf.is_empty() {
        return FrameScan::End;
    }
    if buf.len() < 8 {
        return FrameScan::Torn;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let Some(end) = len.checked_add(8) else {
        return FrameScan::Torn;
    };
    if buf.len() < end {
        return FrameScan::Torn;
    }
    let payload = &buf[8..end];
    if crc32(payload) != crc {
        return FrameScan::Corrupt;
    }
    FrameScan::Ok {
        payload,
        consumed: end,
    }
}

// ---------------------------------------------------------------------------
// Reader + Codec trait
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over a byte slice; every failure is a clean
/// [`StorageError::Codec`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True iff every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Consume the next `n` raw bytes (magic prefixes, fixed-width blobs).
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::codec(format!(
                "input truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// Read a length prefix that must be coverable by the remaining input
    /// (each counted element occupies at least `min_unit` bytes) — rejects
    /// over-length counts before any allocation is sized from them.
    pub fn len_prefix(&mut self, min_unit: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if n.checked_mul(min_unit.max(1))
            .is_none_or(|need| need > self.remaining())
        {
            return Err(StorageError::codec(format!(
                "over-length count {n} at offset {} ({} bytes remain)",
                self.pos,
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let n = self.len_prefix(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::codec("invalid UTF-8 in string"))
    }
}

/// Binary encode/decode for one durable type.
pub trait Codec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode from a buffer, requiring every byte to be consumed.
    fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(StorageError::codec(format!(
                "{} trailing bytes after value",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    debug_assert!(n <= u32::MAX as usize, "collection too large for codec");
    put_u32(out, n as u32);
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(StorageError::codec(format!("invalid bool byte {t}"))),
        }
    }
}

impl Codec for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.u32()
    }
}

impl Codec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.u64()
    }
}

impl Codec for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.i64()
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_len(out, self.len());
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.string()
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(StorageError::codec(format!("invalid Option tag {t}"))),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_len(out, self.len());
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let n = r.len_prefix(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_len(out, self.len());
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let n = r.len_prefix(2)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Storage type impls
// ---------------------------------------------------------------------------

impl Codec for Key {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Key(r.u64()?))
    }
}

const VALUE_NULL: u8 = 0;
const VALUE_BOOL: u8 = 1;
const VALUE_INT: u8 = 2;
const VALUE_FLOAT: u8 = 3;
const VALUE_TEXT: u8 = 4;

impl Codec for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(VALUE_NULL),
            Value::Bool(b) => {
                out.push(VALUE_BOOL);
                b.encode(out);
            }
            Value::Int(i) => {
                out.push(VALUE_INT);
                i.encode(out);
            }
            Value::Float(f) => {
                // Raw bits, not the canonicalised compare/hash bits: a decode
                // must reproduce the exact stored value (-0.0 stays -0.0).
                out.push(VALUE_FLOAT);
                f.to_bits().encode(out);
            }
            Value::Text(t) => {
                out.push(VALUE_TEXT);
                put_len(out, t.len());
                out.extend_from_slice(t.as_bytes());
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.u8()? {
            VALUE_NULL => Ok(Value::Null),
            VALUE_BOOL => Ok(Value::Bool(bool::decode(r)?)),
            VALUE_INT => Ok(Value::Int(r.i64()?)),
            VALUE_FLOAT => Ok(Value::Float(f64::from_bits(r.u64()?))),
            VALUE_TEXT => Ok(Value::text(r.string()?)),
            t => Err(StorageError::codec(format!("invalid Value tag {t}"))),
        }
    }
}

impl Codec for TableSchema {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.columns.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let name = r.string()?;
        let columns = Vec::<String>::decode(r)?;
        // Re-validate through the constructor so a corrupt schema with
        // duplicate columns is rejected here, not deep inside the engine.
        TableSchema::new(name, columns)
    }
}

impl Codec for Relation {
    fn encode(&self, out: &mut Vec<u8>) {
        self.schema().encode(out);
        put_len(out, self.len());
        for (key, row) in self.iter() {
            key.encode(out);
            row.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let schema = TableSchema::decode(r)?;
        let n = r.len_prefix(8)?;
        let mut rel = Relation::new(schema);
        for _ in 0..n {
            let key = Key::decode(r)?;
            let row = Row::decode(r)?;
            rel.insert(key, row)?;
        }
        Ok(rel)
    }
}

const OP_INSERT: u8 = 0;
const OP_UPSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_DELETE_IF_PRESENT: u8 = 3;
const OP_UPDATE: u8 = 4;

impl Codec for WriteOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WriteOp::Insert { table, key, row } => {
                out.push(OP_INSERT);
                table.encode(out);
                key.encode(out);
                row.encode(out);
            }
            WriteOp::Upsert { table, key, row } => {
                out.push(OP_UPSERT);
                table.encode(out);
                key.encode(out);
                row.encode(out);
            }
            WriteOp::Delete { table, key } => {
                out.push(OP_DELETE);
                table.encode(out);
                key.encode(out);
            }
            WriteOp::DeleteIfPresent { table, key } => {
                out.push(OP_DELETE_IF_PRESENT);
                table.encode(out);
                key.encode(out);
            }
            WriteOp::Update { table, key, row } => {
                out.push(OP_UPDATE);
                table.encode(out);
                key.encode(out);
                row.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let tag = r.u8()?;
        let table = r.string()?;
        let key = Key::decode(r)?;
        match tag {
            OP_INSERT => Ok(WriteOp::Insert {
                table,
                key,
                row: Row::decode(r)?,
            }),
            OP_UPSERT => Ok(WriteOp::Upsert {
                table,
                key,
                row: Row::decode(r)?,
            }),
            OP_DELETE => Ok(WriteOp::Delete { table, key }),
            OP_DELETE_IF_PRESENT => Ok(WriteOp::DeleteIfPresent { table, key }),
            OP_UPDATE => Ok(WriteOp::Update {
                table,
                key,
                row: Row::decode(r)?,
            }),
            t => Err(StorageError::codec(format!("invalid WriteOp tag {t}"))),
        }
    }
}

impl Codec for WriteBatch {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ops.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(WriteBatch {
            ops: Vec::<WriteOp>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(String::from("héllo"));
        roundtrip(Option::<u64>::None);
        roundtrip(Some(7u64));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(BTreeMap::from([(String::from("a"), 1u64)]));
    }

    #[test]
    fn values_roundtrip_including_raw_float_bits() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Int(-42));
        roundtrip(Value::text("τables"));
        // -0.0 and 0.0 compare equal through Value's Eq, so check raw bits.
        let neg_zero = Value::Float(-0.0).to_bytes();
        match Value::from_bytes(&neg_zero).unwrap() {
            Value::Float(f) => assert_eq!(f.to_bits(), (-0.0f64).to_bits()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn relation_roundtrip() {
        let mut rel = Relation::with_columns("Task", ["author", "prio"]);
        rel.insert(Key(2), vec!["Ann".into(), 3.into()]).unwrap();
        rel.insert(Key(9), vec![Value::Null, Value::Float(2.5)])
            .unwrap();
        roundtrip(rel);
    }

    #[test]
    fn write_batch_roundtrip() {
        let mut b = WriteBatch::new();
        b.insert("T", Key(1), vec![1.into()])
            .upsert("T", Key(2), vec![2.into()])
            .delete("U", Key(3))
            .delete_if_present("U", Key(4))
            .update("T", Key(1), vec![5.into()]);
        roundtrip(b);
    }

    #[test]
    fn truncated_input_is_a_clean_error() {
        let bytes = Value::text("a long enough text value").to_bytes();
        for cut in 0..bytes.len() {
            assert!(Value::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn over_length_count_is_rejected_before_allocating() {
        // A Vec<u64> claiming u32::MAX elements in a 4-byte buffer.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(Vec::<u64>::from_bytes(&buf).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Value::Int(1).to_bytes();
        bytes.push(0);
        assert!(Value::from_bytes(&bytes).is_err());
    }

    #[test]
    fn frames_roundtrip_and_detect_damage() {
        let mut log = Vec::new();
        write_frame(&mut log, b"first");
        write_frame(&mut log, b"second");
        let FrameScan::Ok { payload, consumed } = read_frame(&log) else {
            panic!("expected first frame");
        };
        assert_eq!(payload, b"first");
        let FrameScan::Ok {
            payload,
            consumed: c2,
        } = read_frame(&log[consumed..])
        else {
            panic!("expected second frame");
        };
        assert_eq!(payload, b"second");
        assert_eq!(read_frame(&log[consumed + c2..]), FrameScan::End);
        // Every proper prefix of a frame is torn, and a payload bit flip is
        // corrupt.
        for cut in 1..13 {
            assert_eq!(read_frame(&log[..cut]), FrameScan::Torn, "cut {cut}");
        }
        let mut flipped = log.clone();
        flipped[10] ^= 0x01;
        assert_eq!(read_frame(&flipped), FrameScan::Corrupt);
    }
}
