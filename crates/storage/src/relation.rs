//! Keyed relations: the unit of data every mapping rule consumes/produces.
//!
//! A [`Relation`] is a set of rows indexed by the InVerDa identifier `p`
//! ([`Key`]). The unique key makes relations behave as sets (the paper's
//! bridge between SQL multisets and Datalog sets) and makes diffing two side
//! states — the heart of write propagation and migration — a linear merge.

use crate::error::StorageError;
use crate::schema::TableSchema;
use crate::value::{Key, Value};
use crate::Result;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// One row's payload (the key is stored separately as the map key).
pub type Row = Vec<Value>;

/// A named, keyed relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: TableSchema,
    rows: BTreeMap<Key, Row>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Relation {
            schema,
            rows: BTreeMap::new(),
        }
    }

    /// Empty relation with name and columns (panics on duplicate columns —
    /// callers constructing literals in code).
    pub fn with_columns(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Relation::new(TableSchema::new(name, columns).expect("valid schema"))
    }

    /// The relation's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the relation holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row under `key`. Fails if the key exists or arity mismatches.
    pub fn insert(&mut self, key: Key, row: Row) -> Result<()> {
        self.check_arity(&row)?;
        if self.rows.contains_key(&key) {
            return Err(StorageError::DuplicateKey {
                table: self.schema.name.clone(),
                key: key.0,
            });
        }
        self.rows.insert(key, row);
        Ok(())
    }

    /// Insert or replace a row under `key`.
    pub fn upsert(&mut self, key: Key, row: Row) -> Result<()> {
        self.check_arity(&row)?;
        self.rows.insert(key, row);
        Ok(())
    }

    /// Remove the row under `key`, returning it.
    pub fn delete(&mut self, key: Key) -> Result<Row> {
        self.rows
            .remove(&key)
            .ok_or_else(|| StorageError::MissingKey {
                table: self.schema.name.clone(),
                key: key.0,
            })
    }

    /// Remove the row under `key` if present.
    pub fn delete_if_present(&mut self, key: Key) -> Option<Row> {
        self.rows.remove(&key)
    }

    /// Replace the row under `key`. Fails if absent.
    pub fn update(&mut self, key: Key, row: Row) -> Result<Row> {
        self.check_arity(&row)?;
        match self.rows.get_mut(&key) {
            Some(slot) => Ok(std::mem::replace(slot, row)),
            None => Err(StorageError::MissingKey {
                table: self.schema.name.clone(),
                key: key.0,
            }),
        }
    }

    /// Row lookup by key.
    pub fn get(&self, key: Key) -> Option<&Row> {
        self.rows.get(&key)
    }

    /// True iff a row with this key exists.
    pub fn contains_key(&self, key: Key) -> bool {
        self.rows.contains_key(&key)
    }

    /// Iterate `(key, row)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &Row)> + '_ {
        self.rows.iter().map(|(k, r)| (*k, r))
    }

    /// Iterate keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.rows.keys().copied()
    }

    /// Visit `(key, row)` for each of `keys` present in the relation, in the
    /// given order; absent keys are skipped. A *dense* key list — strictly
    /// ascending and covering at least half the relation — is served by one
    /// in-order merge against the row tree instead of a tree probe per key;
    /// the visit order is identical either way. This is the fetch primitive
    /// behind chunked scans (datalog) and multi-key query reads (core).
    pub fn select_rows(&self, keys: &[Key], mut f: impl FnMut(Key, &Row)) {
        let dense = keys.len() >= self.rows.len() / 2 && keys.windows(2).all(|w| w[0] < w[1]);
        if dense {
            let mut wanted = keys.iter().copied().peekable();
            for (&k, row) in &self.rows {
                while let Some(&w) = wanted.peek() {
                    if w < k {
                        wanted.next();
                    } else {
                        break;
                    }
                }
                if wanted.peek() == Some(&k) {
                    wanted.next();
                    f(k, row);
                }
            }
        } else {
            for &k in keys {
                if let Some(row) = self.rows.get(&k) {
                    f(k, row);
                }
            }
        }
    }

    /// Value of `column` in the row under `key`.
    pub fn value(&self, key: Key, column: &str) -> Option<&Value> {
        let idx = self.schema.column_index(column)?;
        self.rows.get(&key).map(|r| &r[idx])
    }

    /// Project to the named columns (key is always carried along).
    pub fn project(&self, columns: &[&str]) -> Result<Relation> {
        let idxs: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema
                    .column_index(c)
                    .ok_or_else(|| StorageError::UnknownColumn {
                        table: self.schema.name.clone(),
                        column: (*c).to_string(),
                    })
            })
            .collect::<Result<_>>()?;
        let schema = TableSchema::new(self.schema.name.clone(), columns.iter().copied())?;
        let mut out = Relation::new(schema);
        for (k, row) in &self.rows {
            let projected: Row = idxs.iter().map(|&i| row[i].clone()).collect();
            out.rows.insert(*k, projected);
        }
        Ok(out)
    }

    /// Keep only rows satisfying the predicate.
    pub fn filter(&self, mut pred: impl FnMut(Key, &Row) -> bool) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        for (k, row) in &self.rows {
            if pred(*k, row) {
                out.rows.insert(*k, row.clone());
            }
        }
        out
    }

    /// Rename the relation (schema name only).
    pub fn renamed(mut self, name: impl Into<String>) -> Relation {
        self.schema.name = name.into();
        self
    }

    /// Set-difference by (key,row): rows of `self` not present identically in
    /// `other`. Schemas must have equal arity.
    pub fn minus(&self, other: &Relation) -> Relation {
        self.filter(|k, row| other.get(k) != Some(row))
    }

    /// The delta turning `from` into `self`, as (deletes, inserts, updates).
    ///
    /// * deletes: keys in `from` missing from `self`
    /// * inserts: keys in `self` missing from `from`
    /// * updates: keys in both with differing payload (new row reported)
    ///
    /// Computed as a single two-pointer merge over both key-ordered trees —
    /// O(n + m) with no per-key probes — so each output vector is in
    /// ascending key order.
    pub fn diff(&self, from: &Relation) -> RelationDelta {
        let mut delta = RelationDelta::default();
        let mut new_it = self.rows.iter().peekable();
        let mut old_it = from.rows.iter().peekable();
        loop {
            match (new_it.peek(), old_it.peek()) {
                (Some(&(nk, _)), Some(&(ok, _))) => match nk.cmp(ok) {
                    std::cmp::Ordering::Less => {
                        let (k, row) = new_it.next().expect("peeked");
                        delta.inserts.push((*k, row.clone()));
                    }
                    std::cmp::Ordering::Greater => {
                        let (k, row) = old_it.next().expect("peeked");
                        delta.deletes.push((*k, row.clone()));
                    }
                    std::cmp::Ordering::Equal => {
                        let (k, new_row) = new_it.next().expect("peeked");
                        let (_, old_row) = old_it.next().expect("peeked");
                        if new_row != old_row {
                            delta.updates.push((*k, old_row.clone(), new_row.clone()));
                        }
                    }
                },
                (Some(_), None) => {
                    let (k, row) = new_it.next().expect("peeked");
                    delta.inserts.push((*k, row.clone()));
                }
                (None, Some(_)) => {
                    let (k, row) = old_it.next().expect("peeked");
                    delta.deletes.push((*k, row.clone()));
                }
                (None, None) => break,
            }
        }
        delta
    }

    /// Remove every row. Keeps the schema.
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Build a secondary index over one payload column (`0` is the first
    /// payload column, i.e. *not* the key). Keys per value are in ascending
    /// key order, so an index probe enumerates matches in the same order a
    /// full scan would — evaluation results are identical either way.
    pub fn build_column_index(&self, column: usize) -> ColumnIndex {
        let mut map: HashMap<Value, Vec<Key>> = HashMap::new();
        for (key, row) in &self.rows {
            map.entry(row[column].clone()).or_default().push(*key);
        }
        ColumnIndex { map }
    }

    fn check_arity(&self, row: &Row) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (k, row) in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {k}: [{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

/// A hash index `column value → keys` over one payload column of a
/// [`Relation`] snapshot, built on demand by [`Relation::build_column_index`].
///
/// This is the join accelerator of the compiled rule evaluator: probing a
/// bound column is O(1) instead of a full scan. The index describes one
/// immutable snapshot — callers cache it alongside the snapshot and must not
/// reuse it across mutations. `Value`'s `Hash` agrees with its `Eq`
/// (numerically equal ints and floats collide), so a probe finds exactly the
/// rows a scan-and-compare would.
#[derive(Debug, Clone, Default)]
pub struct ColumnIndex {
    map: HashMap<Value, Vec<Key>>,
}

impl ColumnIndex {
    /// The keys whose indexed column equals `value`, in ascending key order.
    pub fn keys_for(&self, value: &Value) -> &[Key] {
        self.map.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The keys whose indexed column satisfies `column <op> probe`, in
    /// ascending key order — the index-backed form of an eq/range predicate.
    /// Semantics equal a scan evaluating `CmpOp::apply(stored, probe)` row
    /// by row (the stored value on the left, like `Expr::Cmp(col, op, lit)`);
    /// cost is O(distinct values + matches) instead of O(rows), with an O(1)
    /// hash probe for `Eq`.
    pub fn keys_where(&self, op: crate::expr::CmpOp, probe: &Value) -> Vec<Key> {
        if matches!(op, crate::expr::CmpOp::Eq) {
            return self.keys_for(probe).to_vec();
        }
        let mut out: Vec<Key> = self
            .map
            .iter()
            .filter(|(v, _)| op.apply(v, probe))
            .flat_map(|(_, keys)| keys.iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of keys `keys_where` would return, at O(distinct values) and
    /// without materializing or sorting them — the planner's selectivity
    /// estimate for deciding between an index probe and a plain scan.
    pub fn count_where(&self, op: crate::expr::CmpOp, probe: &Value) -> usize {
        if matches!(op, crate::expr::CmpOp::Eq) {
            return self.keys_for(probe).len();
        }
        self.map
            .iter()
            .filter(|(v, _)| op.apply(v, probe))
            .map(|(_, keys)| keys.len())
            .sum()
    }

    /// The `(key, row)` pairs of `rel` whose indexed column equals `value`,
    /// in ascending key order — the probe-then-fetch step shared by every
    /// `by_column` implementation (rows are cloned out of the snapshot;
    /// keys the index knows but the relation no longer holds are skipped).
    pub fn rows_for(&self, rel: &Relation, value: &Value) -> Vec<(Key, Row)> {
        self.keys_for(value)
            .iter()
            .filter_map(|&k| rel.get(k).map(|row| (k, row.clone())))
            .collect()
    }

    /// Number of distinct values indexed.
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }

    /// Record that `key`'s indexed column now holds `value`, keeping the
    /// per-value key list in ascending order (the order an index probe must
    /// enumerate to match a scan). Idempotent for an already-recorded pair.
    pub fn insert_key(&mut self, value: Value, key: Key) {
        let keys = self.map.entry(value).or_default();
        if let Err(pos) = keys.binary_search(&key) {
            keys.insert(pos, key);
        }
    }

    /// Remove the `(value, key)` pair; a no-op if it was not indexed.
    pub fn remove_key(&mut self, value: &Value, key: Key) {
        if let Some(keys) = self.map.get_mut(value) {
            if let Ok(pos) = keys.binary_search(&key) {
                keys.remove(pos);
            }
            if keys.is_empty() {
                self.map.remove(value);
            }
        }
    }

    /// Patch this index (over payload column `column`) for one row change:
    /// `old` is the replaced payload (None for a pure insert), `new` the
    /// payload now stored under `key` (None for a delete). Tolerant of rows
    /// shorter than the indexed column.
    pub fn apply_row_change(
        &mut self,
        column: usize,
        key: Key,
        old: Option<&Row>,
        new: Option<&Row>,
    ) {
        if let Some(v) = old.and_then(|row| row.get(column)) {
            self.remove_key(v, key);
        }
        if let Some(v) = new.and_then(|row| row.get(column)) {
            self.insert_key(v.clone(), key);
        }
    }
}

/// Interior-mutable cache of [`ColumnIndex`]es keyed by `(relation,
/// column)`, shared by every EDB view and the evaluator so the get-or-build
/// logic lives in one place. Lookups are by `&str` (no allocation); each
/// `(relation, column)` pair is built at most once until
/// [`IndexCache::invalidate`] drops the relation's entries.
///
/// The cache is mutex-guarded (not `RefCell`), so every EDB view holding
/// one is `Sync` and can be shared by the parallel evaluation workers.
/// Concurrent `get_or_build` calls on a missing entry may build the same
/// index twice — the index is a pure function of an immutable snapshot, so
/// both builds are identical and the duplicate is simply dropped; the lock
/// is never held across a build.
#[derive(Debug, Default)]
pub struct IndexCache(Mutex<HashMap<String, HashMap<usize, Arc<ColumnIndex>>>>);

impl IndexCache {
    /// Empty cache.
    pub fn new() -> Self {
        IndexCache::default()
    }

    /// The cached index for `(relation, column)`, building it with `build`
    /// on first use. `build`'s error (e.g. an unresolvable relation) is
    /// passed through without caching anything.
    pub fn get_or_build<E>(
        &self,
        relation: &str,
        column: usize,
        build: impl FnOnce() -> std::result::Result<ColumnIndex, E>,
    ) -> std::result::Result<Arc<ColumnIndex>, E> {
        if let Some(hit) = self
            .0
            .lock()
            .get(relation)
            .and_then(|cols| cols.get(&column))
        {
            return Ok(Arc::clone(hit));
        }
        let built = Arc::new(build()?);
        self.0
            .lock()
            .entry(relation.to_string())
            .or_default()
            .insert(column, Arc::clone(&built));
        Ok(built)
    }

    /// The cached index for `(relation, column)`, if any.
    pub fn get(&self, relation: &str, column: usize) -> Option<Arc<ColumnIndex>> {
        self.0
            .lock()
            .get(relation)
            .and_then(|cols| cols.get(&column))
            .map(Arc::clone)
    }

    /// Cache an externally built (or borrowed) index for `(relation,
    /// column)`, replacing any previous one.
    pub fn put(&self, relation: &str, column: usize, index: Arc<ColumnIndex>) {
        self.0
            .lock()
            .entry(relation.to_string())
            .or_default()
            .insert(column, index);
    }

    /// Drop every cached index of `relation` (its snapshot changed).
    pub fn invalidate(&self, relation: &str) {
        self.0.lock().remove(relation);
    }

    /// Patch every cached index of `relation` for one row change instead of
    /// rebuilding: `old` is the replaced payload (None for a pure insert),
    /// `new` the payload now stored under `key` (None for a delete). Indexes
    /// of other relations and uncached columns are unaffected.
    pub fn patch_row(&self, relation: &str, key: Key, old: Option<&Row>, new: Option<&Row>) {
        let mut cache = self.0.lock();
        let Some(cols) = cache.get_mut(relation) else {
            return;
        };
        for (col, index) in cols.iter_mut() {
            Arc::make_mut(index).apply_row_change(*col, key, old, new);
        }
    }
}

/// Differences between two relation states, produced by [`Relation::diff`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationDelta {
    /// Rows present only in the old state: `(key, old_row)`.
    pub deletes: Vec<(Key, Row)>,
    /// Rows present only in the new state: `(key, new_row)`.
    pub inserts: Vec<(Key, Row)>,
    /// Rows present in both with changed payload: `(key, old_row, new_row)`.
    pub updates: Vec<(Key, Row, Row)>,
}

impl RelationDelta {
    /// True iff nothing changed.
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.inserts.is_empty() && self.updates.is_empty()
    }

    /// Total number of changed rows.
    pub fn len(&self) -> usize {
        self.deletes.len() + self.inserts.len() + self.updates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        let mut r = Relation::with_columns("Task", ["author", "task", "prio"]);
        r.insert(
            Key(1),
            vec!["Ann".into(), "Organize party".into(), 3.into()],
        )
        .unwrap();
        r.insert(
            Key(2),
            vec!["Ben".into(), "Learn for exam".into(), 2.into()],
        )
        .unwrap();
        r
    }

    #[test]
    fn insert_delete_update_roundtrip() {
        let mut r = rel();
        assert_eq!(r.len(), 2);
        assert!(r
            .insert(Key(1), vec!["x".into(), "y".into(), 1.into()])
            .is_err());
        let old = r
            .update(Key(1), vec!["Ann".into(), "Write paper".into(), 1.into()])
            .unwrap();
        assert_eq!(old[1], Value::text("Organize party"));
        assert_eq!(r.value(Key(1), "task"), Some(&Value::text("Write paper")));
        let removed = r.delete(Key(2)).unwrap();
        assert_eq!(removed[0], Value::text("Ben"));
        assert!(r.delete(Key(2)).is_err());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn arity_checked() {
        let mut r = rel();
        assert!(matches!(
            r.insert(Key(9), vec!["only-one".into()]),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn project_keeps_keys() {
        let r = rel();
        let p = r.project(&["task"]).unwrap();
        assert_eq!(p.schema().columns, vec!["task"]);
        assert_eq!(
            p.value(Key(2), "task"),
            Some(&Value::text("Learn for exam"))
        );
        assert!(r.project(&["nope"]).is_err());
    }

    #[test]
    fn filter_by_prio() {
        let r = rel();
        let urgent = r.filter(|_, row| row[2] == Value::Int(2));
        assert_eq!(urgent.len(), 1);
        assert!(urgent.contains_key(Key(2)));
    }

    #[test]
    fn diff_computes_minimal_delta() {
        let old = rel();
        let mut new = rel();
        new.delete(Key(2)).unwrap();
        new.insert(Key(3), vec!["Ann".into(), "Write paper".into(), 1.into()])
            .unwrap();
        new.update(
            Key(1),
            vec!["Ann".into(), "Organize party".into(), 2.into()],
        )
        .unwrap();
        let d = new.diff(&old);
        assert_eq!(d.deletes.len(), 1);
        assert_eq!(d.inserts.len(), 1);
        assert_eq!(d.updates.len(), 1);
        assert_eq!(d.deletes[0].0, Key(2));
        assert_eq!(d.inserts[0].0, Key(3));
        assert_eq!(d.updates[0].0, Key(1));
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!(new.diff(&new).is_empty());
    }

    #[test]
    fn minus_removes_identical_rows() {
        let a = rel();
        let mut b = rel();
        b.update(Key(1), vec!["Ann".into(), "Changed".into(), 3.into()])
            .unwrap();
        let m = a.minus(&b);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(Key(1)));
    }

    #[test]
    fn column_index_finds_exactly_the_matching_keys() {
        let mut r = Relation::with_columns("T", ["a", "b"]);
        r.insert(Key(5), vec!["x".into(), 1.into()]).unwrap();
        r.insert(Key(1), vec!["x".into(), 2.into()]).unwrap();
        r.insert(Key(3), vec!["y".into(), 1.into()]).unwrap();
        let by_a = r.build_column_index(0);
        assert_eq!(by_a.keys_for(&Value::text("x")), &[Key(1), Key(5)]);
        assert_eq!(by_a.keys_for(&Value::text("y")), &[Key(3)]);
        assert_eq!(by_a.keys_for(&Value::text("z")), &[] as &[Key]);
        assert_eq!(by_a.distinct_values(), 2);
        // Numeric int/float equality carries over to index probes.
        let by_b = r.build_column_index(1);
        assert_eq!(by_b.keys_for(&Value::Float(1.0)), &[Key(3), Key(5)]);
    }

    #[test]
    fn keys_where_agrees_with_scan_for_every_op() {
        use crate::expr::CmpOp;
        let mut r = Relation::with_columns("T", ["n"]);
        let vals = [
            Value::Int(1),
            Value::Int(5),
            Value::Float(2.5),
            Value::Int(5),
            Value::Null,
            Value::text("x"),
        ];
        for (i, v) in vals.iter().enumerate() {
            r.insert(Key(10 - i as u64), vec![v.clone()]).unwrap();
        }
        let idx = r.build_column_index(0);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for probe in [
                Value::Int(5),
                Value::Float(2.5),
                Value::Null,
                Value::text("x"),
            ] {
                let scanned: Vec<Key> = r
                    .iter()
                    .filter(|(_, row)| op.apply(&row[0], &probe))
                    .map(|(k, _)| k)
                    .collect();
                assert_eq!(
                    idx.keys_where(op, &probe),
                    scanned,
                    "op {} probe {probe}",
                    op.sql()
                );
            }
        }
    }

    #[test]
    fn column_index_probe_agrees_with_scan_beyond_2_pow_53() {
        // Int((1<<53)+1) and Float(2^53) are Eq-equal (numeric comparison
        // through f64); a hash probe must find the row exactly like a
        // scan-and-compare would.
        let mut r = Relation::with_columns("T", ["n"]);
        r.insert(Key(1), vec![Value::Int((1i64 << 53) + 1)])
            .unwrap();
        let idx = r.build_column_index(0);
        let probe = Value::Float(9_007_199_254_740_992.0);
        let scanned: Vec<Key> = r
            .iter()
            .filter(|(_, row)| row[0] == probe)
            .map(|(k, _)| k)
            .collect();
        assert_eq!(idx.keys_for(&probe), scanned.as_slice());
        assert_eq!(idx.keys_for(&probe), &[Key(1)]);
    }

    #[test]
    fn column_index_incremental_patch_matches_rebuild() {
        let mut r = Relation::with_columns("T", ["a"]);
        r.insert(Key(5), vec!["x".into()]).unwrap();
        r.insert(Key(1), vec!["x".into()]).unwrap();
        let mut idx = r.build_column_index(0);
        // Append a row with an existing value: key order must be maintained.
        r.insert(Key(3), vec!["x".into()]).unwrap();
        idx.insert_key(Value::text("x"), Key(3));
        assert_eq!(idx.keys_for(&Value::text("x")), &[Key(1), Key(3), Key(5)]);
        // Update: remove old value, insert new.
        r.update(Key(3), vec!["y".into()]).unwrap();
        idx.remove_key(&Value::text("x"), Key(3));
        idx.insert_key(Value::text("y"), Key(3));
        // Delete and drain a value class entirely.
        r.delete(Key(3)).unwrap();
        idx.remove_key(&Value::text("y"), Key(3));
        assert_eq!(idx.keys_for(&Value::text("y")), &[] as &[Key]);
        // Idempotent / tolerant edge cases.
        idx.remove_key(&Value::text("nope"), Key(9));
        idx.insert_key(Value::text("x"), Key(1));
        let rebuilt = r.build_column_index(0);
        assert_eq!(
            idx.keys_for(&Value::text("x")),
            rebuilt.keys_for(&Value::text("x"))
        );
        assert_eq!(idx.distinct_values(), rebuilt.distinct_values());
    }

    #[test]
    fn index_cache_patch_row_tracks_changes() {
        let mut r = Relation::with_columns("T", ["a", "b"]);
        r.insert(Key(1), vec!["x".into(), 1.into()]).unwrap();
        let cache = IndexCache::new();
        let idx0: Arc<ColumnIndex> = cache
            .get_or_build::<()>("T", 0, || Ok(r.build_column_index(0)))
            .unwrap();
        assert_eq!(idx0.keys_for(&Value::text("x")), &[Key(1)]);
        // Patch for an update on column 0 (column 1 has no cached index).
        cache.patch_row(
            "T",
            Key(1),
            Some(&vec!["x".into(), 1.into()]),
            Some(&vec!["y".into(), 2.into()]),
        );
        let idx1: Arc<ColumnIndex> = cache
            .get_or_build::<()>("T", 0, || panic!("must be cached"))
            .unwrap();
        assert_eq!(idx1.keys_for(&Value::text("x")), &[] as &[Key]);
        assert_eq!(idx1.keys_for(&Value::text("y")), &[Key(1)]);
        // The pre-patch Arc still describes the old snapshot (COW).
        assert_eq!(idx0.keys_for(&Value::text("x")), &[Key(1)]);
        // Pure insert and pure delete.
        cache.patch_row("T", Key(2), None, Some(&vec!["y".into(), 3.into()]));
        cache.patch_row("T", Key(1), Some(&vec!["y".into(), 2.into()]), None);
        let idx2: Arc<ColumnIndex> = cache
            .get_or_build::<()>("T", 0, || panic!("must be cached"))
            .unwrap();
        assert_eq!(idx2.keys_for(&Value::text("y")), &[Key(2)]);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut r = Relation::with_columns("T", ["a"]);
        for k in [5u64, 1, 3] {
            r.insert(Key(k), vec![Value::Int(k as i64)]).unwrap();
        }
        let keys: Vec<u64> = r.keys().map(|k| k.0).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }
}
