//! The storage engine: a namespace of physical tables plus sequences.
//!
//! Concurrency model: a single `RwLock` over the table map. InVerDa's write
//! propagation touches several tables per logical write and the paper's
//! evaluation measures single-thread performance; a coarse lock keeps batch
//! application trivially atomic while still allowing concurrent readers.
//!
//! Tables are stored as `Arc<Relation>` and mutated copy-on-write, so
//! [`Storage::snapshot`] is an O(1) reference-count bump: a statement that
//! reads a table pays nothing for isolation, and a write batch deep-copies a
//! table only while some snapshot of it is still alive. Every table carries
//! an **epoch** — a value drawn from one engine-wide monotonic counter,
//! restamped on every mutation — which is the invalidation currency of the
//! cross-statement snapshot store in `inverda-core`: a derived snapshot is
//! reusable iff every physical table in its resolution footprint still shows
//! the epoch observed at resolution time. Epochs are never reused, so a
//! table dropped and re-created can never satisfy a stale footprint.

use crate::batch::{WriteBatch, WriteOp};
use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::TableSchema;
use crate::value::Key;
use crate::Result;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Named monotonic sequences.
///
/// `next_key()` serves the global InVerDa identifier sequence `p`; named
/// sequences back the skolem `idT(B)` functions of the id-generating SMOs
/// ("in our implementation, this is merely a regular SQL sequence",
/// Appendix B.3).
#[derive(Debug, Default)]
pub struct SequenceSet {
    key_seq: AtomicU64,
    named: Mutex<BTreeMap<String, u64>>,
}

impl SequenceSet {
    /// Fresh sequence set starting at 1.
    pub fn new() -> Self {
        SequenceSet {
            key_seq: AtomicU64::new(1),
            named: Mutex::new(BTreeMap::new()),
        }
    }

    /// Next value of the global key sequence.
    pub fn next_key(&self) -> Key {
        Key(self.key_seq.fetch_add(1, Ordering::Relaxed))
    }

    /// Bump the key sequence so it exceeds `floor` (used when loading data
    /// with externally assigned keys).
    pub fn ensure_key_above(&self, floor: u64) {
        self.key_seq.fetch_max(floor + 1, Ordering::Relaxed);
    }

    /// Next value of the named sequence (created on first use, starting at 1).
    pub fn next(&self, name: &str) -> u64 {
        let mut named = self.named.lock();
        let counter = named.entry(name.to_string()).or_insert(0);
        *counter += 1;
        *counter
    }

    /// Current value of the key sequence (for diagnostics).
    pub fn current_key(&self) -> u64 {
        self.key_seq.load(Ordering::Relaxed)
    }

    /// An independent copy resuming every sequence — the global key
    /// sequence and all named sequences — at its current value. The fork
    /// primitive of branching: a branch mints from its own floor, so
    /// sibling branches never hand out each other's future values, while
    /// both continue deterministically from the shared prefix.
    pub fn fork(&self) -> SequenceSet {
        SequenceSet {
            key_seq: AtomicU64::new(self.key_seq.load(Ordering::Relaxed)),
            named: Mutex::new(self.named.lock().clone()),
        }
    }
}

/// One stored table: shared contents plus its current epoch.
#[derive(Debug)]
struct TableEntry {
    rel: Arc<Relation>,
    epoch: u64,
}

/// Process-wide source of unique branch tags (see [`Storage::branch_tag`]).
/// Starts at 1 so tag 0 can mean "unbound" in consumers.
static BRANCH_TAG_SEQ: AtomicU64 = AtomicU64::new(1);

fn next_branch_tag() -> u64 {
    BRANCH_TAG_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// A namespace of physical tables.
#[derive(Debug)]
pub struct Storage {
    tables: RwLock<BTreeMap<String, TableEntry>>,
    sequences: SequenceSet,
    /// Engine-wide epoch source; see the module docs. Starts at 1 so a live
    /// table's epoch is never 0 — `epoch_of` returns 0 for missing tables.
    epoch_seq: AtomicU64,
    /// The epoch *namespace* this storage stamps in. Two forked branches
    /// resume the same epoch counter, so after divergence the same epoch
    /// number can describe different table states on each side; the tag
    /// disambiguates. A fresh or [`fork`](Storage::fork)ed storage gets a
    /// process-unique tag; a [`from_pinned`](Storage::from_pinned_tagged)
    /// view inherits its origin's tag (its epochs *are* the origin's).
    branch_tag: u64,
}

impl Default for Storage {
    fn default() -> Self {
        Storage::new()
    }
}

impl Storage {
    /// Empty storage.
    pub fn new() -> Self {
        Storage {
            tables: RwLock::new(BTreeMap::new()),
            sequences: SequenceSet::new(),
            epoch_seq: AtomicU64::new(1),
            branch_tag: next_branch_tag(),
        }
    }

    /// The branch tag of this storage's epoch namespace (see the field
    /// docs). Footprint-stamped caches record the tag of the storage they
    /// were resolved against and refuse to serve a storage with a
    /// different tag — epochs are only comparable within one namespace.
    pub fn branch_tag(&self) -> u64 {
        self.branch_tag
    }

    /// An independent copy-on-write fork: every table is shared by `Arc`
    /// at its current epoch (O(tables) reference bumps, no row copies),
    /// the sequences resume at their current values, and the epoch counter
    /// continues from the same point — but under a **fresh** branch tag,
    /// because the fork and the origin will stamp overlapping epoch
    /// numbers onto diverging states from here on.
    pub fn fork(&self) -> Storage {
        let tables = self.tables.read();
        let forked = tables
            .iter()
            .map(|(name, entry)| {
                (
                    name.clone(),
                    TableEntry {
                        rel: Arc::clone(&entry.rel),
                        epoch: entry.epoch,
                    },
                )
            })
            .collect();
        Storage {
            tables: RwLock::new(forked),
            sequences: self.sequences.fork(),
            epoch_seq: AtomicU64::new(self.epoch_seq.load(Ordering::Relaxed)),
            branch_tag: next_branch_tag(),
        }
    }

    /// The sequence set.
    pub fn sequences(&self) -> &SequenceSet {
        &self.sequences
    }

    fn next_epoch(&self) -> u64 {
        self.epoch_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Create an empty table. Fails if the name is taken.
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        self.create_table_with(Relation::new(schema))
    }

    /// Create a table pre-filled with `rel`'s rows (used by migration).
    pub fn create_table_with(&self, rel: Relation) -> Result<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(rel.name()) {
            return Err(StorageError::TableExists {
                table: rel.name().to_string(),
            });
        }
        let epoch = self.next_epoch();
        tables.insert(
            rel.name().to_string(),
            TableEntry {
                rel: Arc::new(rel),
                epoch,
            },
        );
        Ok(())
    }

    /// Drop a table, returning its final contents.
    pub fn drop_table(&self, name: &str) -> Result<Arc<Relation>> {
        self.tables
            .write()
            .remove(name)
            .map(|entry| entry.rel)
            .ok_or_else(|| StorageError::UnknownTable {
                table: name.to_string(),
            })
    }

    /// True iff the physical table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Names of all physical tables (sorted).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Schema of a physical table.
    pub fn schema_of(&self, name: &str) -> Result<TableSchema> {
        self.with_table(name, |rel| rel.schema().clone())
    }

    /// Number of rows in a physical table.
    pub fn row_count(&self, name: &str) -> Result<usize> {
        self.with_table(name, |rel| rel.len())
    }

    /// Run a closure against a read-locked table.
    pub fn with_table<T>(&self, name: &str, f: impl FnOnce(&Relation) -> T) -> Result<T> {
        let tables = self.tables.read();
        let entry = tables.get(name).ok_or_else(|| StorageError::UnknownTable {
            table: name.to_string(),
        })?;
        Ok(f(&entry.rel))
    }

    /// A table's current state as a shared snapshot — O(1); later writes
    /// copy-on-write and leave the snapshot untouched.
    pub fn snapshot(&self, name: &str) -> Result<Arc<Relation>> {
        let tables = self.tables.read();
        tables
            .get(name)
            .map(|entry| Arc::clone(&entry.rel))
            .ok_or_else(|| StorageError::UnknownTable {
                table: name.to_string(),
            })
    }

    /// Snapshot a table together with its epoch, atomically.
    pub fn snapshot_with_epoch(&self, name: &str) -> Result<(Arc<Relation>, u64)> {
        let tables = self.tables.read();
        tables
            .get(name)
            .map(|entry| (Arc::clone(&entry.rel), entry.epoch))
            .ok_or_else(|| StorageError::UnknownTable {
                table: name.to_string(),
            })
    }

    /// The table's current epoch; 0 if the table does not exist (live tables
    /// always have epoch ≥ 1).
    pub fn epoch_of(&self, name: &str) -> u64 {
        self.tables.read().get(name).map(|e| e.epoch).unwrap_or(0)
    }

    /// Snapshot **every** table together with its epoch under one read lock
    /// (mutually consistent) — the raw material of an epoch-pinned reader
    /// view (see [`Storage::from_pinned`]).
    pub fn snapshot_all(&self) -> BTreeMap<String, (Arc<Relation>, u64)> {
        self.tables
            .read()
            .iter()
            .map(|(name, entry)| (name.clone(), (Arc::clone(&entry.rel), entry.epoch)))
            .collect()
    }

    /// The current value of the engine-wide epoch counter (the next
    /// mutation stamps a strictly larger epoch). Diagnostics and pinning.
    pub fn current_epoch(&self) -> u64 {
        self.epoch_seq.load(Ordering::Relaxed)
    }

    /// Rebuild a standalone `Storage` from pinned `(snapshot, epoch)` pairs
    /// — O(tables) `Arc` bumps, no row copies. The result reproduces the
    /// pinned tables *and their epochs* exactly, so footprint-stamped
    /// snapshot-store entries taken at those epochs keep validating against
    /// it; the key sequence resumes at `key_seq` so read-path id minting
    /// over the pinned view mints exactly what a cold read at the pinned
    /// state would have minted. The epoch counter resumes past the largest
    /// pinned epoch (pinned views are never written, so this only keeps the
    /// invariant that live epochs are unique).
    pub fn from_pinned(tables: BTreeMap<String, (Arc<Relation>, u64)>, key_seq: u64) -> Self {
        Storage::from_pinned_tagged(tables, key_seq, next_branch_tag())
    }

    /// [`Storage::from_pinned`] inheriting the origin storage's branch
    /// tag: the pinned view reproduces the origin's epochs, so tag-guarded
    /// caches forked from the origin must keep serving it.
    pub fn from_pinned_tagged(
        tables: BTreeMap<String, (Arc<Relation>, u64)>,
        key_seq: u64,
        branch_tag: u64,
    ) -> Self {
        let max_epoch = tables.values().map(|(_, e)| *e).max().unwrap_or(0);
        let tables = tables
            .into_iter()
            .map(|(name, (rel, epoch))| (name, TableEntry { rel, epoch }))
            .collect();
        let sequences = SequenceSet::new();
        sequences.ensure_key_above(key_seq.saturating_sub(1));
        Storage {
            tables: RwLock::new(tables),
            sequences,
            epoch_seq: AtomicU64::new(max_epoch + 1),
            branch_tag,
        }
    }

    /// Snapshot several tables under one read lock (mutually consistent).
    pub fn snapshot_many(&self, names: &[&str]) -> Result<Vec<Arc<Relation>>> {
        let tables = self.tables.read();
        names
            .iter()
            .map(|name| {
                tables
                    .get(*name)
                    .map(|entry| Arc::clone(&entry.rel))
                    .ok_or_else(|| StorageError::UnknownTable {
                        table: (*name).to_string(),
                    })
            })
            .collect()
    }

    /// Apply a batch atomically: every operation is validated against the
    /// in-order simulated effect of the batch *before* anything is mutated,
    /// so a failing batch leaves storage untouched without an undo log, and
    /// a succeeding one mutates tables copy-on-write (a deep copy happens
    /// only while an outstanding snapshot still shares the table). Each
    /// touched table is restamped with a fresh epoch.
    pub fn apply(&self, batch: &WriteBatch) -> Result<()> {
        let mut tables = self.tables.write();
        // ---- Phase 1: validate. `present` overlays the batch's own effects
        // so intra-batch sequences (insert then delete the same key, …) are
        // judged like the sequential application would.
        let mut present: HashMap<(&str, Key), bool> = HashMap::new();
        for op in &batch.ops {
            let name = op.table();
            let entry = tables.get(name).ok_or_else(|| StorageError::UnknownTable {
                table: name.to_string(),
            })?;
            let arity = entry.rel.schema().arity();
            if let WriteOp::Insert { row, .. }
            | WriteOp::Upsert { row, .. }
            | WriteOp::Update { row, .. } = op
            {
                if row.len() != arity {
                    return Err(StorageError::ArityMismatch {
                        table: name.to_string(),
                        expected: arity,
                        got: row.len(),
                    });
                }
            }
            let key = op.key();
            let exists = present
                .get(&(name, key))
                .copied()
                .unwrap_or_else(|| entry.rel.contains_key(key));
            match op {
                WriteOp::Insert { .. } if exists => {
                    return Err(StorageError::DuplicateKey {
                        table: name.to_string(),
                        key: key.0,
                    });
                }
                WriteOp::Delete { .. } | WriteOp::Update { .. } if !exists => {
                    return Err(StorageError::MissingKey {
                        table: name.to_string(),
                        key: key.0,
                    });
                }
                _ => {}
            }
            let present_after =
                !matches!(op, WriteOp::Delete { .. } | WriteOp::DeleteIfPresent { .. });
            present.insert((name, key), present_after);
        }
        // ---- Phase 2: apply (infallible after validation). No-op writes —
        // upserting an identical row, deleting an absent key — are skipped
        // before the copy-on-write, so they neither deep-copy a shared table
        // nor move its epoch.
        let mut touched: BTreeSet<&str> = BTreeSet::new();
        for op in &batch.ops {
            let entry = tables.get_mut(op.table()).expect("validated");
            match op {
                WriteOp::Insert { key, row, .. }
                | WriteOp::Upsert { key, row, .. }
                | WriteOp::Update { key, row, .. } => {
                    if entry.rel.get(*key) == Some(row) {
                        continue;
                    }
                    Arc::make_mut(&mut entry.rel)
                        .upsert(*key, row.clone())
                        .expect("validated arity");
                }
                WriteOp::Delete { key, .. } | WriteOp::DeleteIfPresent { key, .. } => {
                    if !entry.rel.contains_key(*key) {
                        continue;
                    }
                    Arc::make_mut(&mut entry.rel).delete_if_present(*key);
                }
            }
            touched.insert(op.table());
        }
        // ---- Phase 3: restamp epochs of touched tables.
        for name in touched {
            let epoch = self.next_epoch();
            if let Some(entry) = tables.get_mut(name) {
                entry.epoch = epoch;
            }
        }
        Ok(())
    }

    /// Replace a table's entire contents (used by migration when moving data
    /// to a new physical schema).
    pub fn replace_table(&self, rel: Relation) -> Result<()> {
        let mut tables = self.tables.write();
        if !tables.contains_key(rel.name()) {
            return Err(StorageError::UnknownTable {
                table: rel.name().to_string(),
            });
        }
        let epoch = self.next_epoch();
        tables.insert(
            rel.name().to_string(),
            TableEntry {
                rel: Arc::new(rel),
                epoch,
            },
        );
        Ok(())
    }

    /// Total number of rows across all tables (diagnostics).
    pub fn total_rows(&self) -> usize {
        self.tables.read().values().map(|e| e.rel.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn storage_with_t() -> Storage {
        let s = Storage::new();
        s.create_table(TableSchema::new("T", ["a", "b"]).unwrap())
            .unwrap();
        s
    }

    #[test]
    fn create_and_drop() {
        let s = storage_with_t();
        assert!(s.has_table("T"));
        assert!(s
            .create_table(TableSchema::new("T", ["x"]).unwrap())
            .is_err());
        s.drop_table("T").unwrap();
        assert!(!s.has_table("T"));
        assert!(s.drop_table("T").is_err());
    }

    #[test]
    fn batch_applies_atomically() {
        let s = storage_with_t();
        let mut good = WriteBatch::new();
        good.insert("T", Key(1), vec![Value::Int(1), Value::Int(2)]);
        s.apply(&good).unwrap();
        assert_eq!(s.row_count("T").unwrap(), 1);

        // Second op fails (duplicate key) -> first op must be rolled back.
        let mut bad = WriteBatch::new();
        bad.insert("T", Key(2), vec![Value::Int(3), Value::Int(4)])
            .insert("T", Key(1), vec![Value::Int(5), Value::Int(6)]);
        assert!(s.apply(&bad).is_err());
        assert_eq!(s.row_count("T").unwrap(), 1);
        assert!(s.with_table("T", |r| r.get(Key(2)).is_none()).unwrap());
    }

    #[test]
    fn batch_against_missing_table_rolls_back() {
        let s = storage_with_t();
        let mut bad = WriteBatch::new();
        bad.insert("T", Key(7), vec![Value::Int(0), Value::Int(0)])
            .insert("NoSuch", Key(8), vec![]);
        assert!(s.apply(&bad).is_err());
        assert_eq!(s.row_count("T").unwrap(), 0);
    }

    #[test]
    fn intra_batch_effects_are_validated_in_order() {
        let s = storage_with_t();
        // Insert then delete then re-insert the same key: legal in sequence.
        let mut b = WriteBatch::new();
        b.insert("T", Key(1), vec![Value::Int(1), Value::Int(1)])
            .delete("T", Key(1))
            .insert("T", Key(1), vec![Value::Int(2), Value::Int(2)]);
        s.apply(&b).unwrap();
        assert_eq!(
            s.with_table("T", |r| r.get(Key(1)).cloned()).unwrap(),
            Some(vec![Value::Int(2), Value::Int(2)])
        );
        // Update of a key only created earlier in the same batch: legal.
        let mut b2 = WriteBatch::new();
        b2.insert("T", Key(2), vec![Value::Int(3), Value::Int(3)])
            .update("T", Key(2), vec![Value::Int(4), Value::Int(4)]);
        s.apply(&b2).unwrap();
        // Update of a key deleted earlier in the same batch: rejected, and
        // the whole batch must be rolled back.
        let mut b3 = WriteBatch::new();
        b3.delete("T", Key(2))
            .update("T", Key(2), vec![Value::Int(5), Value::Int(5)]);
        assert!(s.apply(&b3).is_err());
        assert_eq!(
            s.with_table("T", |r| r.get(Key(2)).cloned()).unwrap(),
            Some(vec![Value::Int(4), Value::Int(4)])
        );
    }

    #[test]
    fn sequences_are_monotonic_and_independent() {
        let s = Storage::new();
        let k1 = s.sequences().next_key();
        let k2 = s.sequences().next_key();
        assert!(k2 > k1);
        assert_eq!(s.sequences().next("id_Author"), 1);
        assert_eq!(s.sequences().next("id_Author"), 2);
        assert_eq!(s.sequences().next("id_Task"), 1);
        s.sequences().ensure_key_above(1000);
        assert!(s.sequences().next_key().0 > 1000);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let s = storage_with_t();
        let mut b = WriteBatch::new();
        b.insert("T", Key(1), vec![Value::Int(1), Value::Int(1)]);
        s.apply(&b).unwrap();
        let snap = s.snapshot("T").unwrap();
        let mut b2 = WriteBatch::new();
        b2.delete("T", Key(1));
        s.apply(&b2).unwrap();
        assert_eq!(snap.len(), 1);
        assert_eq!(s.row_count("T").unwrap(), 0);
    }

    #[test]
    fn snapshot_many_is_consistent() {
        let s = storage_with_t();
        s.create_table(TableSchema::new("U", ["x"]).unwrap())
            .unwrap();
        let rels = s.snapshot_many(&["T", "U"]).unwrap();
        assert_eq!(rels.len(), 2);
        assert!(s.snapshot_many(&["T", "Nope"]).is_err());
    }

    #[test]
    fn replace_table_swaps_contents() {
        let s = storage_with_t();
        let mut new_rel = Relation::with_columns("T", ["a", "b"]);
        new_rel
            .insert(Key(42), vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        s.replace_table(new_rel).unwrap();
        assert_eq!(s.row_count("T").unwrap(), 1);
        let orphan = Relation::with_columns("Ghost", ["x"]);
        assert!(s.replace_table(orphan).is_err());
    }

    #[test]
    fn epochs_restamp_on_every_mutation() {
        let s = storage_with_t();
        let e0 = s.epoch_of("T");
        assert!(e0 >= 1);
        assert_eq!(s.epoch_of("NoSuch"), 0);

        let mut b = WriteBatch::new();
        b.insert("T", Key(1), vec![Value::Int(1), Value::Int(1)]);
        s.apply(&b).unwrap();
        let e1 = s.epoch_of("T");
        assert!(e1 > e0);

        // A failing batch must not move the epoch.
        let mut bad = WriteBatch::new();
        bad.insert("T", Key(1), vec![Value::Int(2), Value::Int(2)]);
        assert!(s.apply(&bad).is_err());
        assert_eq!(s.epoch_of("T"), e1);

        // Untouched tables keep their epoch.
        s.create_table(TableSchema::new("U", ["x"]).unwrap())
            .unwrap();
        let eu = s.epoch_of("U");
        let mut b2 = WriteBatch::new();
        b2.delete("T", Key(1));
        s.apply(&b2).unwrap();
        assert!(s.epoch_of("T") > e1);
        assert_eq!(s.epoch_of("U"), eu);

        // Replace and re-create restamp; epochs are never reused.
        s.replace_table(Relation::with_columns("T", ["a", "b"]))
            .unwrap();
        let e3 = s.epoch_of("T");
        assert!(e3 > e1);
        s.drop_table("T").unwrap();
        assert_eq!(s.epoch_of("T"), 0);
        s.create_table(TableSchema::new("T", ["a", "b"]).unwrap())
            .unwrap();
        assert!(s.epoch_of("T") > e3);
    }

    #[test]
    fn snapshot_with_epoch_matches_contents() {
        let s = storage_with_t();
        let (snap0, e0) = s.snapshot_with_epoch("T").unwrap();
        assert!(snap0.is_empty());
        let mut b = WriteBatch::new();
        b.insert("T", Key(1), vec![Value::Int(1), Value::Int(1)]);
        s.apply(&b).unwrap();
        let (snap1, e1) = s.snapshot_with_epoch("T").unwrap();
        assert_eq!(snap1.len(), 1);
        assert!(e1 > e0);
        // The old snapshot still describes the old epoch's contents.
        assert!(snap0.is_empty());
    }

    #[test]
    fn from_pinned_reproduces_tables_epochs_and_key_seq() {
        let s = storage_with_t();
        let mut b = WriteBatch::new();
        b.insert(
            "T",
            s.sequences().next_key(),
            vec![Value::Int(1), Value::Int(2)],
        );
        s.apply(&b).unwrap();
        s.create_table(TableSchema::new("U", ["x"]).unwrap())
            .unwrap();

        let pinned_tables = s.snapshot_all();
        let key_seq = s.sequences().current_key();
        let pin = Storage::from_pinned(pinned_tables, key_seq);
        assert_eq!(pin.table_names(), s.table_names());
        assert_eq!(pin.epoch_of("T"), s.epoch_of("T"));
        assert_eq!(pin.epoch_of("U"), s.epoch_of("U"));
        assert_eq!(pin.row_count("T").unwrap(), 1);
        assert_eq!(pin.sequences().current_key(), key_seq);
        assert_eq!(pin.sequences().next_key(), s.sequences().next_key());
        assert!(pin.current_epoch() > pin.epoch_of("T"));

        // The pin is isolated: later writes to the origin do not move it.
        let mut b2 = WriteBatch::new();
        b2.delete("T", Key(1));
        s.apply(&b2).unwrap();
        assert_eq!(pin.row_count("T").unwrap(), 1);
        assert_ne!(pin.epoch_of("T"), s.epoch_of("T"));
    }

    #[test]
    fn fork_is_isolated_and_freshly_tagged() {
        let s = storage_with_t();
        let mut b = WriteBatch::new();
        b.insert(
            "T",
            s.sequences().next_key(),
            vec![Value::Int(1), Value::Int(2)],
        );
        s.apply(&b).unwrap();
        assert_eq!(s.sequences().next("id_X"), 1);

        let f = s.fork();
        assert_ne!(f.branch_tag(), s.branch_tag(), "forks get fresh tags");
        assert_eq!(f.table_names(), s.table_names());
        assert_eq!(f.epoch_of("T"), s.epoch_of("T"));
        assert_eq!(f.sequences().current_key(), s.sequences().current_key());
        // Named sequences resume from the shared prefix, independently.
        assert_eq!(f.sequences().next("id_X"), 2);
        assert_eq!(s.sequences().next("id_X"), 2);

        // Divergent writes stamp overlapping epoch numbers — exactly the
        // aliasing hazard branch tags exist to disambiguate.
        let mut bs = WriteBatch::new();
        bs.insert("T", Key(100), vec![Value::Int(9), Value::Int(9)]);
        s.apply(&bs).unwrap();
        let mut bf = WriteBatch::new();
        bf.insert("T", Key(200), vec![Value::Int(8), Value::Int(8)]);
        f.apply(&bf).unwrap();
        assert_eq!(s.epoch_of("T"), f.epoch_of("T"));
        assert!(s.with_table("T", |r| r.get(Key(200)).is_none()).unwrap());
        assert!(f.with_table("T", |r| r.get(Key(100)).is_none()).unwrap());

        // A pinned view inherits the origin's tag; a plain pin does not.
        let pin = Storage::from_pinned_tagged(
            s.snapshot_all(),
            s.sequences().current_key(),
            s.branch_tag(),
        );
        assert_eq!(pin.branch_tag(), s.branch_tag());
        let other = Storage::from_pinned(f.snapshot_all(), f.sequences().current_key());
        assert_ne!(other.branch_tag(), f.branch_tag());
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::sync::Arc;
        let s = Arc::new(storage_with_t());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let key = Key((t * 1000 + i) as u64);
                    let mut b = WriteBatch::new();
                    b.insert("T", key, vec![Value::Int(t as i64), Value::Int(i as i64)]);
                    s.apply(&b).unwrap();
                    let _ = s.snapshot("T").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.row_count("T").unwrap(), 200);
    }
}
