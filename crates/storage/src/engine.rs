//! The storage engine: a namespace of physical tables plus sequences.
//!
//! Concurrency model: a single `RwLock` over the table map. InVerDa's write
//! propagation touches several tables per logical write and the paper's
//! evaluation measures single-thread performance; a coarse lock keeps batch
//! application trivially atomic while still allowing concurrent readers.

use crate::batch::{WriteBatch, WriteOp};
use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::TableSchema;
use crate::value::Key;
use crate::Result;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Named monotonic sequences.
///
/// `next_key()` serves the global InVerDa identifier sequence `p`; named
/// sequences back the skolem `idT(B)` functions of the id-generating SMOs
/// ("in our implementation, this is merely a regular SQL sequence",
/// Appendix B.3).
#[derive(Debug, Default)]
pub struct SequenceSet {
    key_seq: AtomicU64,
    named: Mutex<BTreeMap<String, u64>>,
}

impl SequenceSet {
    /// Fresh sequence set starting at 1.
    pub fn new() -> Self {
        SequenceSet {
            key_seq: AtomicU64::new(1),
            named: Mutex::new(BTreeMap::new()),
        }
    }

    /// Next value of the global key sequence.
    pub fn next_key(&self) -> Key {
        Key(self.key_seq.fetch_add(1, Ordering::Relaxed))
    }

    /// Bump the key sequence so it exceeds `floor` (used when loading data
    /// with externally assigned keys).
    pub fn ensure_key_above(&self, floor: u64) {
        self.key_seq.fetch_max(floor + 1, Ordering::Relaxed);
    }

    /// Next value of the named sequence (created on first use, starting at 1).
    pub fn next(&self, name: &str) -> u64 {
        let mut named = self.named.lock();
        let counter = named.entry(name.to_string()).or_insert(0);
        *counter += 1;
        *counter
    }

    /// Current value of the key sequence (for diagnostics).
    pub fn current_key(&self) -> u64 {
        self.key_seq.load(Ordering::Relaxed)
    }
}

/// A namespace of physical tables.
#[derive(Debug, Default)]
pub struct Storage {
    tables: RwLock<BTreeMap<String, Relation>>,
    sequences: SequenceSet,
}

impl Storage {
    /// Empty storage.
    pub fn new() -> Self {
        Storage {
            tables: RwLock::new(BTreeMap::new()),
            sequences: SequenceSet::new(),
        }
    }

    /// The sequence set.
    pub fn sequences(&self) -> &SequenceSet {
        &self.sequences
    }

    /// Create an empty table. Fails if the name is taken.
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(&schema.name) {
            return Err(StorageError::TableExists { table: schema.name });
        }
        tables.insert(schema.name.clone(), Relation::new(schema));
        Ok(())
    }

    /// Create a table pre-filled with `rel`'s rows (used by migration).
    pub fn create_table_with(&self, rel: Relation) -> Result<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(rel.name()) {
            return Err(StorageError::TableExists {
                table: rel.name().to_string(),
            });
        }
        tables.insert(rel.name().to_string(), rel);
        Ok(())
    }

    /// Drop a table, returning its final contents.
    pub fn drop_table(&self, name: &str) -> Result<Relation> {
        self.tables
            .write()
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable {
                table: name.to_string(),
            })
    }

    /// True iff the physical table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Names of all physical tables (sorted).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Schema of a physical table.
    pub fn schema_of(&self, name: &str) -> Result<TableSchema> {
        self.with_table(name, |rel| rel.schema().clone())
    }

    /// Number of rows in a physical table.
    pub fn row_count(&self, name: &str) -> Result<usize> {
        self.with_table(name, |rel| rel.len())
    }

    /// Run a closure against a read-locked table.
    pub fn with_table<T>(&self, name: &str, f: impl FnOnce(&Relation) -> T) -> Result<T> {
        let tables = self.tables.read();
        let rel = tables.get(name).ok_or_else(|| StorageError::UnknownTable {
            table: name.to_string(),
        })?;
        Ok(f(rel))
    }

    /// Clone a table's current state (a consistent snapshot).
    pub fn snapshot(&self, name: &str) -> Result<Relation> {
        self.with_table(name, |rel| rel.clone())
    }

    /// Snapshot several tables under one read lock (mutually consistent).
    pub fn snapshot_many(&self, names: &[&str]) -> Result<Vec<Relation>> {
        let tables = self.tables.read();
        names
            .iter()
            .map(|name| {
                tables
                    .get(*name)
                    .cloned()
                    .ok_or_else(|| StorageError::UnknownTable {
                        table: (*name).to_string(),
                    })
            })
            .collect()
    }

    /// Apply a batch atomically: on any failure the pre-batch state of every
    /// touched table is restored and the error returned.
    pub fn apply(&self, batch: &WriteBatch) -> Result<()> {
        let mut tables = self.tables.write();
        // Undo log: table name -> its state before the first mutation.
        let mut undo: BTreeMap<String, Relation> = BTreeMap::new();
        for op in &batch.ops {
            let name = op.table().to_string();
            let rel = match tables.get_mut(&name) {
                Some(rel) => rel,
                None => {
                    let err = StorageError::UnknownTable { table: name };
                    Self::rollback(&mut tables, undo);
                    return Err(err);
                }
            };
            if !undo.contains_key(rel.name()) {
                undo.insert(rel.name().to_string(), rel.clone());
            }
            let res = match op {
                WriteOp::Insert { key, row, .. } => rel.insert(*key, row.clone()),
                WriteOp::Upsert { key, row, .. } => rel.upsert(*key, row.clone()),
                WriteOp::Delete { key, .. } => rel.delete(*key).map(|_| ()),
                WriteOp::DeleteIfPresent { key, .. } => {
                    rel.delete_if_present(*key);
                    Ok(())
                }
                WriteOp::Update { key, row, .. } => rel.update(*key, row.clone()).map(|_| ()),
            };
            if let Err(err) = res {
                Self::rollback(&mut tables, undo);
                return Err(err);
            }
        }
        Ok(())
    }

    fn rollback(tables: &mut BTreeMap<String, Relation>, undo: BTreeMap<String, Relation>) {
        for (name, rel) in undo {
            tables.insert(name, rel);
        }
    }

    /// Replace a table's entire contents (used by migration when moving data
    /// to a new physical schema).
    pub fn replace_table(&self, rel: Relation) -> Result<()> {
        let mut tables = self.tables.write();
        if !tables.contains_key(rel.name()) {
            return Err(StorageError::UnknownTable {
                table: rel.name().to_string(),
            });
        }
        tables.insert(rel.name().to_string(), rel);
        Ok(())
    }

    /// Total number of rows across all tables (diagnostics).
    pub fn total_rows(&self) -> usize {
        self.tables.read().values().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn storage_with_t() -> Storage {
        let s = Storage::new();
        s.create_table(TableSchema::new("T", ["a", "b"]).unwrap())
            .unwrap();
        s
    }

    #[test]
    fn create_and_drop() {
        let s = storage_with_t();
        assert!(s.has_table("T"));
        assert!(s
            .create_table(TableSchema::new("T", ["x"]).unwrap())
            .is_err());
        s.drop_table("T").unwrap();
        assert!(!s.has_table("T"));
        assert!(s.drop_table("T").is_err());
    }

    #[test]
    fn batch_applies_atomically() {
        let s = storage_with_t();
        let mut good = WriteBatch::new();
        good.insert("T", Key(1), vec![Value::Int(1), Value::Int(2)]);
        s.apply(&good).unwrap();
        assert_eq!(s.row_count("T").unwrap(), 1);

        // Second op fails (duplicate key) -> first op must be rolled back.
        let mut bad = WriteBatch::new();
        bad.insert("T", Key(2), vec![Value::Int(3), Value::Int(4)])
            .insert("T", Key(1), vec![Value::Int(5), Value::Int(6)]);
        assert!(s.apply(&bad).is_err());
        assert_eq!(s.row_count("T").unwrap(), 1);
        assert!(s.with_table("T", |r| r.get(Key(2)).is_none()).unwrap());
    }

    #[test]
    fn batch_against_missing_table_rolls_back() {
        let s = storage_with_t();
        let mut bad = WriteBatch::new();
        bad.insert("T", Key(7), vec![Value::Int(0), Value::Int(0)])
            .insert("NoSuch", Key(8), vec![]);
        assert!(s.apply(&bad).is_err());
        assert_eq!(s.row_count("T").unwrap(), 0);
    }

    #[test]
    fn sequences_are_monotonic_and_independent() {
        let s = Storage::new();
        let k1 = s.sequences().next_key();
        let k2 = s.sequences().next_key();
        assert!(k2 > k1);
        assert_eq!(s.sequences().next("id_Author"), 1);
        assert_eq!(s.sequences().next("id_Author"), 2);
        assert_eq!(s.sequences().next("id_Task"), 1);
        s.sequences().ensure_key_above(1000);
        assert!(s.sequences().next_key().0 > 1000);
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let s = storage_with_t();
        let mut b = WriteBatch::new();
        b.insert("T", Key(1), vec![Value::Int(1), Value::Int(1)]);
        s.apply(&b).unwrap();
        let snap = s.snapshot("T").unwrap();
        let mut b2 = WriteBatch::new();
        b2.delete("T", Key(1));
        s.apply(&b2).unwrap();
        assert_eq!(snap.len(), 1);
        assert_eq!(s.row_count("T").unwrap(), 0);
    }

    #[test]
    fn snapshot_many_is_consistent() {
        let s = storage_with_t();
        s.create_table(TableSchema::new("U", ["x"]).unwrap())
            .unwrap();
        let rels = s.snapshot_many(&["T", "U"]).unwrap();
        assert_eq!(rels.len(), 2);
        assert!(s.snapshot_many(&["T", "Nope"]).is_err());
    }

    #[test]
    fn replace_table_swaps_contents() {
        let s = storage_with_t();
        let mut new_rel = Relation::with_columns("T", ["a", "b"]);
        new_rel
            .insert(Key(42), vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        s.replace_table(new_rel).unwrap();
        assert_eq!(s.row_count("T").unwrap(), 1);
        let orphan = Relation::with_columns("Ghost", ["x"]);
        assert!(s.replace_table(orphan).is_err());
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::sync::Arc;
        let s = Arc::new(storage_with_t());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let key = Key((t * 1000 + i) as u64);
                    let mut b = WriteBatch::new();
                    b.insert("T", key, vec![Value::Int(t as i64), Value::Int(i as i64)]);
                    s.apply(&b).unwrap();
                    let _ = s.snapshot("T").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.row_count("T").unwrap(), 200);
    }
}
