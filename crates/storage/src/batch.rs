//! Atomic write batches.
//!
//! One logical write on a schema version fans out — through the SMO delta
//! rules — into many physical writes across data tables and auxiliary tables.
//! The paper's prototype rides on the host DBMS's transactions ("maintaining
//! transaction guarantees"); here a [`WriteBatch`] is applied atomically by
//! the engine: either every operation succeeds or the storage state is
//! rolled back to the pre-batch state.

use crate::relation::Row;
use crate::value::Key;

/// A single physical write operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    /// Insert `row` under `key` into `table`. Fails if the key exists.
    Insert {
        /// Target physical table.
        table: String,
        /// Tuple identifier.
        key: Key,
        /// Row payload.
        row: Row,
    },
    /// Insert-or-replace `row` under `key`.
    Upsert {
        /// Target physical table.
        table: String,
        /// Tuple identifier.
        key: Key,
        /// Row payload.
        row: Row,
    },
    /// Delete the row under `key`. Fails if absent.
    Delete {
        /// Target physical table.
        table: String,
        /// Tuple identifier.
        key: Key,
    },
    /// Delete the row under `key` if it exists (no-op otherwise).
    DeleteIfPresent {
        /// Target physical table.
        table: String,
        /// Tuple identifier.
        key: Key,
    },
    /// Replace the row under `key`. Fails if absent.
    Update {
        /// Target physical table.
        table: String,
        /// Tuple identifier.
        key: Key,
        /// New row payload.
        row: Row,
    },
}

impl WriteOp {
    /// The table this operation touches.
    pub fn table(&self) -> &str {
        match self {
            WriteOp::Insert { table, .. }
            | WriteOp::Upsert { table, .. }
            | WriteOp::Delete { table, .. }
            | WriteOp::DeleteIfPresent { table, .. }
            | WriteOp::Update { table, .. } => table,
        }
    }

    /// The key this operation addresses.
    pub fn key(&self) -> Key {
        match self {
            WriteOp::Insert { key, .. }
            | WriteOp::Upsert { key, .. }
            | WriteOp::Delete { key, .. }
            | WriteOp::DeleteIfPresent { key, .. }
            | WriteOp::Update { key, .. } => *key,
        }
    }
}

/// An ordered list of write operations applied atomically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WriteBatch {
    /// Operations in application order.
    pub ops: Vec<WriteOp>,
}

impl WriteBatch {
    /// Empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Queue an insert.
    pub fn insert(&mut self, table: impl Into<String>, key: Key, row: Row) -> &mut Self {
        self.ops.push(WriteOp::Insert {
            table: table.into(),
            key,
            row,
        });
        self
    }

    /// Queue an upsert.
    pub fn upsert(&mut self, table: impl Into<String>, key: Key, row: Row) -> &mut Self {
        self.ops.push(WriteOp::Upsert {
            table: table.into(),
            key,
            row,
        });
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, table: impl Into<String>, key: Key) -> &mut Self {
        self.ops.push(WriteOp::Delete {
            table: table.into(),
            key,
        });
        self
    }

    /// Queue a tolerant delete.
    pub fn delete_if_present(&mut self, table: impl Into<String>, key: Key) -> &mut Self {
        self.ops.push(WriteOp::DeleteIfPresent {
            table: table.into(),
            key,
        });
        self
    }

    /// Queue an update.
    pub fn update(&mut self, table: impl Into<String>, key: Key, row: Row) -> &mut Self {
        self.ops.push(WriteOp::Update {
            table: table.into(),
            key,
            row,
        });
        self
    }

    /// Append all ops of another batch.
    pub fn extend(&mut self, other: WriteBatch) -> &mut Self {
        self.ops.extend(other.ops);
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn builder_accumulates_in_order() {
        let mut b = WriteBatch::new();
        b.insert("T", Key(1), vec![Value::Int(1)])
            .delete("T", Key(2))
            .update("U", Key(3), vec![Value::Int(9)]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.ops[0].table(), "T");
        assert_eq!(b.ops[2].table(), "U");
        assert_eq!(b.ops[1].key(), Key(2));
        assert!(!b.is_empty());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = WriteBatch::new();
        a.insert("T", Key(1), vec![]);
        let mut b = WriteBatch::new();
        b.delete("T", Key(1));
        a.extend(b);
        assert_eq!(a.len(), 2);
    }
}
