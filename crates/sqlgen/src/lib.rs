//! # inverda-sqlgen
//!
//! SQL delta-code generation — the textual artifact the paper's prototype
//! installs into PostgreSQL, and the measuring stick of its Table 3.
//!
//! * [`views`] translates γ mapping rule sets into `CREATE VIEW` statements
//!   following the general pattern of the paper's Figure 7 (one `UNION`
//!   branch per rule; positive literals in `FROM`, shared variables as join
//!   conditions, negative literals as `NOT EXISTS`).
//! * [`triggers`] generates the write-side delta code (`INSTEAD OF`
//!   triggers with insert/update/delete propagation statements).
//! * [`generate`] walks a catalog genealogy and emits the complete delta
//!   code for every table version under a materialization schema.
//! * [`metrics`] implements the paper's code-size measures: lines of code,
//!   statements, and characters with consecutive whitespace collapsed.
//! * [`handwritten`] is the handwritten-SQL baseline corpus for the TasKy
//!   example (what a developer would write without InVerDa), used to
//!   regenerate Table 3.

#![warn(missing_docs)]

pub mod generate;
pub mod handwritten;
pub mod metrics;
pub mod triggers;
pub mod views;

pub use generate::delta_code_for_catalog;
pub use metrics::CodeMetrics;
