//! Whole-catalog delta-code generation.
//!
//! Walks a genealogy under a materialization schema and emits the complete
//! SQL delta code — the artifact the paper's Database Evolution Operation
//! installs "with one click of a button": one view per non-local table
//! version (Cases 2/3 of Section 6) and the three write triggers for it,
//! plus DDL for the auxiliary tables.

use crate::triggers::trigger_sql;
use crate::views::view_sql;
use inverda_catalog::{Genealogy, MaterializationSchema, StorageCase};
use std::fmt::Write;

/// Generated delta code for one table version.
#[derive(Debug, Clone)]
pub struct TableDeltaCode {
    /// `version.table` style label.
    pub label: String,
    /// View definition (empty for locally stored table versions).
    pub view: String,
    /// Trigger definitions (empty for locally stored table versions).
    pub triggers: String,
}

/// Generate the full delta code for every table version of every schema
/// version under the given materialization.
pub fn delta_code_for_catalog(
    genealogy: &Genealogy,
    materialization: &MaterializationSchema,
) -> Vec<TableDeltaCode> {
    let mut out = Vec::new();
    for version in genealogy.version_names() {
        let v = genealogy.version(version).expect("listed version exists");
        for (table, tv_id) in &v.tables {
            let tv = genealogy.table_version(*tv_id);
            let label = format!("{version}.{table}");
            match materialization.storage_of(genealogy, *tv_id) {
                StorageCase::Local => out.push(TableDeltaCode {
                    label,
                    view: String::new(),
                    triggers: String::new(),
                }),
                StorageCase::Forward(m) => {
                    let inst = genealogy.smo(m);
                    out.push(TableDeltaCode {
                        label: label.clone(),
                        view: view_sql(
                            &format!("v_{}", tv.rel),
                            &tv.rel,
                            &tv.columns,
                            &inst.derived.to_src,
                        ),
                        triggers: trigger_sql(
                            &format!("v_{}", tv.rel),
                            &tv.rel,
                            &inst.derived.to_tgt,
                        ),
                    });
                }
                StorageCase::Backward(m) => {
                    let inst = genealogy.smo(m);
                    out.push(TableDeltaCode {
                        label: label.clone(),
                        view: view_sql(
                            &format!("v_{}", tv.rel),
                            &tv.rel,
                            &tv.columns,
                            &inst.derived.to_tgt,
                        ),
                        triggers: trigger_sql(
                            &format!("v_{}", tv.rel),
                            &tv.rel,
                            &inst.derived.to_src,
                        ),
                    });
                }
            }
        }
    }
    out
}

/// DDL for the auxiliary tables physically present under a materialization.
pub fn aux_ddl(genealogy: &Genealogy, materialization: &MaterializationSchema) -> String {
    let mut out = String::new();
    for smo in genealogy.smos() {
        if !smo.moves_data() {
            continue;
        }
        let aux = if materialization.is_materialized(genealogy, smo.id) {
            &smo.derived.tgt_aux
        } else {
            &smo.derived.src_aux
        };
        for t in aux
            .iter()
            .chain(smo.derived.shared_aux.iter().map(|s| &s.table))
        {
            let cols: Vec<String> = std::iter::once("p BIGINT PRIMARY KEY".to_string())
                .chain(t.columns.iter().map(|c| format!("{c} TEXT")))
                .collect();
            let _ = writeln!(out, "CREATE TABLE {} ({});", t.rel, cols.join(", "));
        }
    }
    out
}

/// Concatenate all generated code (for size measurement).
pub fn full_script(genealogy: &Genealogy, materialization: &MaterializationSchema) -> String {
    let mut out = aux_ddl(genealogy, materialization);
    for code in delta_code_for_catalog(genealogy, materialization) {
        out.push_str(&code.view);
        out.push_str(&code.triggers);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_bidel::{parse_script, Statement};

    fn tasky() -> Genealogy {
        let mut g = Genealogy::new();
        let script = parse_script(
            "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio); \
             CREATE SCHEMA VERSION Do! FROM TasKy WITH \
               SPLIT TABLE Task INTO Todo WITH prio = 1; \
               DROP COLUMN prio FROM Todo DEFAULT 1; \
             CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
               DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
               RENAME COLUMN author IN Author TO name;",
        )
        .unwrap();
        for stmt in script.statements {
            if let Statement::CreateSchemaVersion { name, from, smos } = stmt {
                g.create_schema_version(&name, from.as_deref(), &smos)
                    .unwrap();
            }
        }
        g
    }

    #[test]
    fn local_tables_need_no_delta_code() {
        let g = tasky();
        let m = MaterializationSchema::initial();
        let code = delta_code_for_catalog(&g, &m);
        let local = code.iter().find(|c| c.label == "TasKy.Task").unwrap();
        assert!(local.view.is_empty() && local.triggers.is_empty());
        let remote = code.iter().find(|c| c.label == "Do!.Todo").unwrap();
        assert!(remote.view.contains("CREATE VIEW"));
        assert_eq!(remote.triggers.matches("CREATE TRIGGER").count(), 3);
    }

    #[test]
    fn delta_code_depends_on_materialization() {
        let g = tasky();
        let initial = full_script(&g, &MaterializationSchema::initial());
        let tasky2_tables = vec![
            g.resolve("TasKy2", "Task").unwrap(),
            g.resolve("TasKy2", "Author").unwrap(),
        ];
        let m2 = MaterializationSchema::for_table_versions(&g, &tasky2_tables).unwrap();
        let evolved = full_script(&g, &m2);
        assert_ne!(initial, evolved);
        // Under m2 the old TasKy.Task needs a view instead.
        let code = delta_code_for_catalog(&g, &m2);
        let old = code.iter().find(|c| c.label == "TasKy.Task").unwrap();
        assert!(old.view.contains("CREATE VIEW"));
    }

    #[test]
    fn aux_ddl_lists_physical_aux_tables() {
        let g = tasky();
        let ddl = aux_ddl(&g, &MaterializationSchema::initial());
        // Initially virtualized: SPLIT's source aux + DECOMPOSE's ID table.
        assert!(ddl.contains("_aux_Todo_minus"));
        assert!(ddl.contains("_aux_ID_Task"));
    }
}
