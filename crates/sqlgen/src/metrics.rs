//! Code-size measures of the paper's Table 3.
//!
//! "As there is no general coding style for SQL, LOC is a rather vague
//! measure. We also include the number of statements and the number of
//! characters (consecutive white-space characters counted as one) as more
//! objective measures."

/// Size measures of a script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeMetrics {
    /// Non-empty, non-comment-only lines.
    pub lines: usize,
    /// Top-level statements (`;`-terminated, outside strings/dollar quotes).
    pub statements: usize,
    /// Characters, with consecutive whitespace collapsed to one.
    pub characters: usize,
}

impl CodeMetrics {
    /// Measure a script.
    pub fn measure(script: &str) -> CodeMetrics {
        CodeMetrics {
            lines: count_lines(script),
            statements: count_statements(script),
            characters: count_characters(script),
        }
    }

    /// Size ratios relative to a baseline (the paper's `×N` columns).
    pub fn ratio_to(&self, other: &CodeMetrics) -> (f64, f64, f64) {
        let div = |a: usize, b: usize| {
            if b == 0 {
                f64::NAN
            } else {
                a as f64 / b as f64
            }
        };
        (
            div(self.lines, other.lines),
            div(self.statements, other.statements),
            div(self.characters, other.characters),
        )
    }
}

fn count_lines(script: &str) -> usize {
    script
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with("--")
        })
        .count()
}

fn count_statements(script: &str) -> usize {
    let mut count = 0usize;
    let mut in_string = false;
    let mut in_dollar = false;
    let bytes: Vec<char> = script.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_string {
            if c == '\'' {
                in_string = false;
            }
        } else if in_dollar {
            if c == '$' && bytes.get(i + 1) == Some(&'$') {
                in_dollar = false;
                i += 1;
            }
        } else {
            match c {
                '\'' => in_string = true,
                '$' if bytes.get(i + 1) == Some(&'$') => {
                    in_dollar = true;
                    i += 1;
                }
                ';' => count += 1,
                _ => {}
            }
        }
        i += 1;
    }
    count
}

fn count_characters(script: &str) -> usize {
    let mut count = 0usize;
    let mut prev_ws = false;
    for c in script.trim().chars() {
        if c.is_whitespace() {
            if !prev_ws {
                count += 1;
            }
            prev_ws = true;
        } else {
            count += 1;
            prev_ws = false;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_the_papers_initial_statement() {
        // The paper: initially 1 LOC, 1 statement, 54 characters.
        let initial = "CREATE TABLE Task(author varchar, task varchar, prio int);";
        let m = CodeMetrics::measure(initial);
        assert_eq!(m.lines, 1);
        assert_eq!(m.statements, 1);
        assert!(m.characters > 40 && m.characters < 70, "{}", m.characters);
    }

    #[test]
    fn comments_and_blanks_do_not_count_as_loc() {
        let s = "-- a comment\n\nSELECT 1;\n  -- another\nSELECT 2;";
        let m = CodeMetrics::measure(s);
        assert_eq!(m.lines, 2);
        assert_eq!(m.statements, 2);
    }

    #[test]
    fn semicolons_inside_strings_and_bodies_do_not_count() {
        let s = "INSERT INTO t VALUES ('a;b');\nCREATE FUNCTION f() AS $$ BEGIN x; y; END $$;";
        assert_eq!(CodeMetrics::measure(s).statements, 2);
    }

    #[test]
    fn whitespace_collapses() {
        assert_eq!(CodeMetrics::measure("a   b").characters, 3);
        assert_eq!(CodeMetrics::measure("a\n\n  b").characters, 3);
    }

    #[test]
    fn ratios() {
        let a = CodeMetrics {
            lines: 300,
            statements: 150,
            characters: 9000,
        };
        let b = CodeMetrics {
            lines: 3,
            statements: 3,
            characters: 150,
        };
        let (l, s, c) = a.ratio_to(&b);
        assert_eq!(l, 100.0);
        assert_eq!(s, 50.0);
        assert_eq!(c, 60.0);
    }
}
