//! The handwritten-SQL baseline of Table 3: what a developer writes to keep
//! TasKy and TasKy2 co-existing *without* InVerDa, transcribed for
//! PostgreSQL in the style of the paper's experiment (Section 8.1).
//!
//! Three phases, mirroring Table 3's columns:
//!
//! * [`INITIAL_SQL`] — create the initial TasKy schema (identical effort
//!   with or without InVerDa);
//! * [`EVOLUTION_SQL`] — expose TasKy2 as views + triggers while the data
//!   stays in the TasKy layout, including the auxiliary structures for
//!   generated author identifiers;
//! * [`MIGRATION_SQL`] — physically migrate to the TasKy2 layout and
//!   rewrite *all* delta code (TasKy and Do! must stay alive).
//!
//! The corresponding BiDEL scripts are [`BIDEL_INITIAL`], [`BIDEL_EVOLUTION`]
//! and [`BIDEL_MIGRATION`].

/// BiDEL: initial schema version.
pub const BIDEL_INITIAL: &str =
    "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);";

/// BiDEL: the TasKy2 evolution (3 logical lines, as in the paper).
pub const BIDEL_EVOLUTION: &str = "\
CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH
DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author;
RENAME COLUMN author IN Author TO name;";

/// BiDEL: the migration (1 line).
pub const BIDEL_MIGRATION: &str = "MATERIALIZE 'TasKy2';";

/// Handwritten SQL: initial schema (same as with InVerDa).
pub const INITIAL_SQL: &str =
    "CREATE TABLE task(p bigint PRIMARY KEY, author text, task text, prio int);";

/// Handwritten SQL: create the co-existing TasKy2 schema version while the
/// data remains stored in the TasKy layout.
pub const EVOLUTION_SQL: &str = r#"
-- ============================================================
-- TasKy2 as a co-existing schema version over the TasKy layout
-- ============================================================
CREATE SCHEMA tasky2;

-- Auxiliary structures: stable author identifiers for the decomposition.
CREATE SEQUENCE tasky2.author_id_seq;
CREATE TABLE tasky2.author_ids (
  p bigint PRIMARY KEY,
  author_id bigint NOT NULL
);
CREATE TABLE tasky2.author_names (
  author_id bigint PRIMARY KEY,
  name text NOT NULL UNIQUE
);

CREATE FUNCTION tasky2.author_id_for(n text) RETURNS bigint AS $$
DECLARE aid bigint;
BEGIN
  SELECT author_id INTO aid FROM tasky2.author_names WHERE name = n;
  IF aid IS NULL THEN
    aid := nextval('tasky2.author_id_seq');
    INSERT INTO tasky2.author_names(author_id, name) VALUES (aid, n);
  END IF;
  RETURN aid;
END $$ LANGUAGE plpgsql;

-- Keep the id assignment in sync with the stored tasks.
CREATE FUNCTION tasky2.sync_ids() RETURNS trigger AS $$
BEGIN
  IF TG_OP = 'DELETE' THEN
    DELETE FROM tasky2.author_ids WHERE p = OLD.p;
    DELETE FROM tasky2.author_names a
      WHERE NOT EXISTS (SELECT 1 FROM task t
                        WHERE t.author = a.name AND t.p <> OLD.p);
    RETURN OLD;
  END IF;
  INSERT INTO tasky2.author_ids(p, author_id)
    VALUES (NEW.p, tasky2.author_id_for(NEW.author))
    ON CONFLICT (p) DO UPDATE SET author_id = EXCLUDED.author_id;
  IF TG_OP = 'UPDATE' AND OLD.author <> NEW.author THEN
    DELETE FROM tasky2.author_names a
      WHERE a.name = OLD.author
        AND NOT EXISTS (SELECT 1 FROM task t
                        WHERE t.author = a.name AND t.p <> OLD.p);
  END IF;
  RETURN NEW;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER task_sync_ids
  AFTER INSERT OR UPDATE OR DELETE ON task
  FOR EACH ROW EXECUTE FUNCTION tasky2.sync_ids();

-- Views exposing the TasKy2 schema version.
CREATE VIEW tasky2.task (p, task, prio, author) AS
  SELECT t.p, t.task, t.prio, i.author_id
  FROM task t JOIN tasky2.author_ids i ON i.p = t.p;

CREATE VIEW tasky2.author (p, name) AS
  SELECT a.author_id, a.name
  FROM tasky2.author_names a;

-- Write support: INSTEAD OF triggers on tasky2.task.
CREATE FUNCTION tasky2.task_ins() RETURNS trigger AS $$
DECLARE n text;
BEGIN
  SELECT name INTO n FROM tasky2.author_names WHERE author_id = NEW.author;
  IF n IS NULL THEN
    RAISE EXCEPTION 'unknown author id %', NEW.author;
  END IF;
  INSERT INTO task(p, author, task, prio)
    VALUES (COALESCE(NEW.p, nextval('task_p_seq')), n, NEW.task, NEW.prio);
  RETURN NEW;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER tasky2_task_ins INSTEAD OF INSERT ON tasky2.task
  FOR EACH ROW EXECUTE FUNCTION tasky2.task_ins();

CREATE FUNCTION tasky2.task_upd() RETURNS trigger AS $$
DECLARE n text;
BEGIN
  SELECT name INTO n FROM tasky2.author_names WHERE author_id = NEW.author;
  IF n IS NULL THEN
    RAISE EXCEPTION 'unknown author id %', NEW.author;
  END IF;
  UPDATE task SET author = n, task = NEW.task, prio = NEW.prio
    WHERE p = OLD.p;
  RETURN NEW;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER tasky2_task_upd INSTEAD OF UPDATE ON tasky2.task
  FOR EACH ROW EXECUTE FUNCTION tasky2.task_upd();

CREATE FUNCTION tasky2.task_del() RETURNS trigger AS $$
BEGIN
  DELETE FROM task WHERE p = OLD.p;
  RETURN OLD;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER tasky2_task_del INSTEAD OF DELETE ON tasky2.task
  FOR EACH ROW EXECUTE FUNCTION tasky2.task_del();

-- Write support: INSTEAD OF triggers on tasky2.author.
CREATE FUNCTION tasky2.author_ins() RETURNS trigger AS $$
BEGIN
  INSERT INTO tasky2.author_names(author_id, name)
    VALUES (COALESCE(NEW.p, nextval('tasky2.author_id_seq')), NEW.name);
  RETURN NEW;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER tasky2_author_ins INSTEAD OF INSERT ON tasky2.author
  FOR EACH ROW EXECUTE FUNCTION tasky2.author_ins();

CREATE FUNCTION tasky2.author_upd() RETURNS trigger AS $$
BEGIN
  UPDATE tasky2.author_names SET name = NEW.name WHERE author_id = OLD.p;
  UPDATE task t SET author = NEW.name
    FROM tasky2.author_ids i
    WHERE i.p = t.p AND i.author_id = OLD.p;
  RETURN NEW;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER tasky2_author_upd INSTEAD OF UPDATE ON tasky2.author
  FOR EACH ROW EXECUTE FUNCTION tasky2.author_upd();

CREATE FUNCTION tasky2.author_del() RETURNS trigger AS $$
BEGIN
  DELETE FROM task t USING tasky2.author_ids i
    WHERE i.p = t.p AND i.author_id = OLD.p;
  DELETE FROM tasky2.author_names WHERE author_id = OLD.p;
  RETURN OLD;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER tasky2_author_del INSTEAD OF DELETE ON tasky2.author
  FOR EACH ROW EXECUTE FUNCTION tasky2.author_del();

-- Backfill the auxiliary structures from the existing data.
INSERT INTO tasky2.author_names(author_id, name)
  SELECT nextval('tasky2.author_id_seq'), author
  FROM (SELECT DISTINCT author FROM task) d;
INSERT INTO tasky2.author_ids(p, author_id)
  SELECT t.p, a.author_id
  FROM task t JOIN tasky2.author_names a ON a.name = t.author;
"#;

/// Handwritten SQL: migrate the physical layout to TasKy2 and rewrite the
/// delta code of the still-alive TasKy and Do! versions.
pub const MIGRATION_SQL: &str = r#"
-- ============================================================
-- Physical migration to the TasKy2 layout
-- ============================================================
BEGIN;

-- New physical tables.
CREATE TABLE task2 (
  p bigint PRIMARY KEY,
  task text,
  prio int,
  author bigint NOT NULL
);
CREATE TABLE author2 (
  p bigint PRIMARY KEY,
  name text NOT NULL UNIQUE
);

-- Move the data.
INSERT INTO author2(p, name)
  SELECT author_id, name FROM tasky2.author_names;
INSERT INTO task2(p, task, prio, author)
  SELECT t.p, t.task, t.prio, i.author_id
  FROM task t JOIN tasky2.author_ids i ON i.p = t.p;

-- Tear down the old delta code and the old physical table.
DROP TRIGGER task_sync_ids ON task;
DROP FUNCTION tasky2.sync_ids();
DROP VIEW tasky2.task;
DROP VIEW tasky2.author;
DROP TABLE tasky2.author_ids;
DROP TABLE tasky2.author_names;
DROP TABLE task;

-- TasKy2 now reads the physical tables directly.
CREATE VIEW tasky2.task AS SELECT p, task, prio, author FROM task2;
CREATE VIEW tasky2.author AS SELECT p, name FROM author2;

-- TasKy becomes a view over the new layout.
CREATE VIEW task (p, author, task, prio) AS
  SELECT t.p, a.name, t.task, t.prio
  FROM task2 t JOIN author2 a ON a.p = t.author;

CREATE FUNCTION task_ins() RETURNS trigger AS $$
DECLARE aid bigint;
BEGIN
  SELECT p INTO aid FROM author2 WHERE name = NEW.author;
  IF aid IS NULL THEN
    aid := nextval('tasky2.author_id_seq');
    INSERT INTO author2(p, name) VALUES (aid, NEW.author);
  END IF;
  INSERT INTO task2(p, task, prio, author)
    VALUES (COALESCE(NEW.p, nextval('task_p_seq')), NEW.task, NEW.prio, aid);
  RETURN NEW;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER task_ins_t INSTEAD OF INSERT ON task
  FOR EACH ROW EXECUTE FUNCTION task_ins();

CREATE FUNCTION task_upd() RETURNS trigger AS $$
DECLARE aid bigint;
BEGIN
  SELECT p INTO aid FROM author2 WHERE name = NEW.author;
  IF aid IS NULL THEN
    aid := nextval('tasky2.author_id_seq');
    INSERT INTO author2(p, name) VALUES (aid, NEW.author);
  END IF;
  UPDATE task2 SET task = NEW.task, prio = NEW.prio, author = aid
    WHERE p = OLD.p;
  DELETE FROM author2 a
    WHERE a.name = OLD.author
      AND NOT EXISTS (SELECT 1 FROM task2 t WHERE t.author = a.p);
  RETURN NEW;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER task_upd_t INSTEAD OF UPDATE ON task
  FOR EACH ROW EXECUTE FUNCTION task_upd();

CREATE FUNCTION task_del() RETURNS trigger AS $$
BEGIN
  DELETE FROM task2 WHERE p = OLD.p;
  DELETE FROM author2 a
    WHERE a.name = OLD.author
      AND NOT EXISTS (SELECT 1 FROM task2 t WHERE t.author = a.p);
  RETURN OLD;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER task_del_t INSTEAD OF DELETE ON task
  FOR EACH ROW EXECUTE FUNCTION task_del();

-- Do! keeps working: its view/triggers were defined over `task`, which is
-- now itself a view — PostgreSQL does not allow INSTEAD OF triggers to
-- cascade through views onto views, so Do!'s delta code must be rewritten
-- against the new physical tables as well.
DROP VIEW IF EXISTS dolist.todo;
CREATE VIEW dolist.todo (p, author, task) AS
  SELECT t.p, a.name, t.task
  FROM task2 t JOIN author2 a ON a.p = t.author
  WHERE t.prio = 1;

CREATE OR REPLACE FUNCTION dolist.todo_ins() RETURNS trigger AS $$
DECLARE aid bigint;
BEGIN
  SELECT p INTO aid FROM author2 WHERE name = NEW.author;
  IF aid IS NULL THEN
    aid := nextval('tasky2.author_id_seq');
    INSERT INTO author2(p, name) VALUES (aid, NEW.author);
  END IF;
  INSERT INTO task2(p, task, prio, author)
    VALUES (COALESCE(NEW.p, nextval('task_p_seq')), NEW.task, 1, aid);
  RETURN NEW;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER dolist_todo_ins INSTEAD OF INSERT ON dolist.todo
  FOR EACH ROW EXECUTE FUNCTION dolist.todo_ins();

CREATE OR REPLACE FUNCTION dolist.todo_del() RETURNS trigger AS $$
BEGIN
  DELETE FROM task2 WHERE p = OLD.p;
  RETURN OLD;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER dolist_todo_del INSTEAD OF DELETE ON dolist.todo
  FOR EACH ROW EXECUTE FUNCTION dolist.todo_del();

CREATE OR REPLACE FUNCTION dolist.todo_upd() RETURNS trigger AS $$
DECLARE aid bigint;
BEGIN
  SELECT p INTO aid FROM author2 WHERE name = NEW.author;
  IF aid IS NULL THEN
    aid := nextval('tasky2.author_id_seq');
    INSERT INTO author2(p, name) VALUES (aid, NEW.author);
  END IF;
  UPDATE task2 SET task = NEW.task, author = aid WHERE p = OLD.p;
  RETURN NEW;
END $$ LANGUAGE plpgsql;
CREATE TRIGGER dolist_todo_upd INSTEAD OF UPDATE ON dolist.todo
  FOR EACH ROW EXECUTE FUNCTION dolist.todo_upd();

COMMIT;
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CodeMetrics;

    #[test]
    fn bidel_scripts_are_tiny() {
        let m = CodeMetrics::measure(BIDEL_EVOLUTION);
        assert_eq!(m.lines, 3);
        let m = CodeMetrics::measure(BIDEL_MIGRATION);
        assert_eq!(m.lines, 1);
        assert_eq!(m.statements, 1);
    }

    #[test]
    fn handwritten_sql_is_orders_of_magnitude_larger() {
        let evo_sql = CodeMetrics::measure(EVOLUTION_SQL);
        let evo_bidel = CodeMetrics::measure(BIDEL_EVOLUTION);
        let (loc_ratio, _, chars_ratio) = evo_sql.ratio_to(&evo_bidel);
        assert!(loc_ratio > 30.0, "LOC ratio {loc_ratio}");
        assert!(chars_ratio > 20.0, "chars ratio {chars_ratio}");

        let mig_sql = CodeMetrics::measure(MIGRATION_SQL);
        let mig_bidel = CodeMetrics::measure(BIDEL_MIGRATION);
        let (loc_ratio, _, _) = mig_sql.ratio_to(&mig_bidel);
        assert!(loc_ratio > 80.0, "migration LOC ratio {loc_ratio}");
    }

    #[test]
    fn initial_effort_is_identical() {
        let sql = CodeMetrics::measure(INITIAL_SQL);
        let bidel = CodeMetrics::measure(BIDEL_INITIAL);
        assert_eq!(sql.lines, bidel.lines);
        assert_eq!(sql.statements, bidel.statements);
    }

    #[test]
    fn bidel_scripts_parse() {
        inverda_bidel::parse_script(BIDEL_INITIAL).unwrap();
        inverda_bidel::parse_script(BIDEL_EVOLUTION).unwrap();
        inverda_bidel::parse_script(BIDEL_MIGRATION).unwrap();
    }
}
