//! Trigger generation: the write-side delta code.
//!
//! The paper (Section 6): "For writing, InVerDa generates three triggers on
//! each table version: for inserts, deletes, and updates", derived from the
//! same rule sets via update propagation, with `old ¬R(p,A)` guards for
//! minimality. We emit PostgreSQL-flavoured `INSTEAD OF` trigger functions:
//! per mapping rule one propagation statement per write kind, binding the
//! changed tuple into each body literal that matches the written table.

use crate::views::{expr_sql, select_branch};
use inverda_datalog::ast::{Literal, Rule, RuleSet, Term};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Generate the three `INSTEAD OF` triggers for writes on `view_name`
/// (a table version's view), where `rules` is the mapping toward the
/// physical side and `written_rel` the rule-set relation the view stands
/// for.
pub fn trigger_sql(view_name: &str, written_rel: &str, rules: &RuleSet) -> String {
    let mut out = String::new();
    for (kind, keyword) in [("ins", "INSERT"), ("upd", "UPDATE"), ("del", "DELETE")] {
        let _ = writeln!(
            out,
            "CREATE FUNCTION {view_name}_{kind}() RETURNS trigger AS $$"
        );
        let _ = writeln!(out, "BEGIN");
        let mut any = false;
        for rule in &rules.rules {
            for (i, lit) in rule.body.iter().enumerate() {
                let touches = match lit {
                    Literal::Pos(a) | Literal::Neg(a) => a.relation == written_rel,
                    _ => false,
                };
                if !touches {
                    continue;
                }
                any = true;
                out.push_str(&propagation_statement(rule, i, keyword));
            }
        }
        if !any {
            let _ = writeln!(out, "  -- no propagation required");
        }
        let _ = writeln!(out, "  RETURN NEW;");
        let _ = writeln!(out, "END $$ LANGUAGE plpgsql;");
        let _ = writeln!(
            out,
            "CREATE TRIGGER {view_name}_{kind}_t INSTEAD OF {keyword} ON {view_name} \
             FOR EACH ROW EXECUTE FUNCTION {view_name}_{kind}();"
        );
    }
    out
}

/// One propagation statement: the rule's head is (re)derived for the
/// written tuple bound at body position `pos` (the paper's Rules 52–54
/// shape, with a `NOT EXISTS` minimality guard).
fn propagation_statement(rule: &Rule, pos: usize, keyword: &str) -> String {
    let head = &rule.head;
    let mut s = String::new();
    let bound_row = if keyword == "DELETE" { "OLD" } else { "NEW" };
    // Bind the written literal's variables to NEW./OLD. columns.
    let mut binding: BTreeMap<String, String> = BTreeMap::new();
    if let Literal::Pos(atom) | Literal::Neg(atom) = &rule.body[pos] {
        for (i, term) in atom.terms.iter().enumerate() {
            if let Term::Var(v) = term {
                binding.insert(v.clone(), format!("{bound_row}.c{i}"));
            }
        }
    }
    match keyword {
        "INSERT" | "UPDATE" => {
            let _ = writeln!(s, "  INSERT INTO {} ", head.relation);
            let derived = derived_select(rule, pos, &binding);
            s.push_str(&derived);
            let guard: Vec<String> = head
                .terms
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t {
                    Term::Var(v) => binding.get(v).map(|b| format!("g.c{i} = {b}")),
                    _ => None,
                })
                .collect();
            let _ = writeln!(
                s,
                "  ON CONFLICT (c0) DO UPDATE SET {};",
                if guard.is_empty() {
                    "c0 = EXCLUDED.c0".to_string()
                } else {
                    "/* refresh payload */ c0 = EXCLUDED.c0".to_string()
                }
            );
        }
        "DELETE" => {
            let key = match head.terms.first() {
                Some(Term::Var(v)) => binding
                    .get(v)
                    .cloned()
                    .unwrap_or_else(|| format!("{bound_row}.c0")),
                _ => format!("{bound_row}.c0"),
            };
            let _ = writeln!(
                s,
                "  DELETE FROM {} WHERE c0 = {key} AND NOT EXISTS (",
                head.relation
            );
            s.push_str(&derived_select(rule, pos, &binding));
            let _ = writeln!(s, "  );");
        }
        _ => unreachable!(),
    }
    s
}

/// The SELECT re-deriving the head for the bound tuple: the original rule
/// branch with the written literal replaced by the NEW/OLD bindings.
fn derived_select(rule: &Rule, pos: usize, binding: &BTreeMap<String, String>) -> String {
    let remaining = Rule::new(
        rule.head.clone(),
        rule.body
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != pos)
            .map(|(_, l)| l.clone())
            .collect(),
    );
    let branch = select_branch(&remaining);
    // Substitute NEW./OLD. bindings for the removed literal's variables.
    let mut s = branch;
    for (var, col) in binding {
        s = s.replace(&format!("/*unbound {var}*/NULL"), col);
    }
    s
}

/// Render a user condition with NEW-row bindings (used for partition checks
/// in handwritten-style triggers).
pub fn condition_on_new(e: &inverda_storage::Expr, columns: &[String]) -> String {
    let binding: BTreeMap<String, String> = columns
        .iter()
        .enumerate()
        .map(|(i, c)| (format!("c_{c}"), format!("NEW.c{}", i + 1)))
        .collect();
    expr_sql(e, &binding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_datalog::ast::Atom;
    use inverda_storage::Expr;

    fn rules() -> RuleSet {
        RuleSet::new(vec![Rule::new(
            Atom::vars("R", &["p", "a"]),
            vec![
                Literal::Pos(Atom::vars("T", &["p", "a"])),
                Literal::Cond(Expr::col("c_x").gt(Expr::lit(0))),
            ],
        )])
    }

    #[test]
    fn three_triggers_generated() {
        let sql = trigger_sql("v_T", "T", &rules());
        assert_eq!(sql.matches("CREATE TRIGGER").count(), 3);
        assert_eq!(sql.matches("INSTEAD OF").count(), 3);
        assert!(sql.contains("INSTEAD OF INSERT"));
        assert!(sql.contains("INSTEAD OF UPDATE"));
        assert!(sql.contains("INSTEAD OF DELETE"));
        assert!(sql.contains("INSERT INTO R"));
        assert!(sql.contains("DELETE FROM R"));
    }

    #[test]
    fn unrelated_views_have_no_propagation() {
        let sql = trigger_sql("v_X", "NoSuchRel", &rules());
        assert!(sql.contains("no propagation required"));
    }
}
