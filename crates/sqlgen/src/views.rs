//! Datalog → `CREATE VIEW` translation (paper Figure 7).
//!
//! Each rule becomes one `SELECT` branch of a `UNION`: the rule head's
//! terms form the select list, positive body atoms the `FROM` clause,
//! repeated variables the join conditions, condition literals `WHERE`
//! predicates, and negative literals `NOT EXISTS` subselects. Skolem
//! id-generators appear as calls to the engine-provided function
//! `inverda_id(generator, args…)` (a memoized sequence, Appendix B.3).

use inverda_datalog::ast::{Atom, Literal, Rule, RuleSet, Term};
use inverda_storage::Expr;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Generate a `CREATE VIEW` statement for `view_name` defined by the rules
/// deriving head `head` in `rules`. `columns` names the view's columns.
pub fn view_sql(view_name: &str, head: &str, columns: &[String], rules: &RuleSet) -> String {
    let defining: Vec<&Rule> = rules.rules_for(head);
    let mut out = String::new();
    let cols = std::iter::once("p".to_string())
        .chain(columns.iter().cloned())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "CREATE VIEW {view_name} ({cols}) AS");
    if defining.is_empty() {
        let _ = writeln!(out, "SELECT NULL WHERE FALSE;");
        return out;
    }
    for (i, rule) in defining.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out, "UNION");
        }
        out.push_str(&select_branch(rule));
    }
    out.push_str(";\n");
    out
}

/// One `SELECT` branch for a rule (Figure 7's subquery pattern).
pub fn select_branch(rule: &Rule) -> String {
    let mut from: Vec<(String, &Atom)> = Vec::new();
    let mut wheres: Vec<String> = Vec::new();
    // Variable -> first SQL column that binds it.
    let mut binding: BTreeMap<String, String> = BTreeMap::new();

    for lit in &rule.body {
        if let Literal::Pos(atom) = lit {
            let alias = format!("t{}", from.len());
            for (pos, term) in atom.terms.iter().enumerate() {
                let col = format!("{alias}.c{pos}");
                match term {
                    Term::Var(v) => match binding.get(v) {
                        Some(first) => wheres.push(format!("{first} = {col}")),
                        None => {
                            binding.insert(v.clone(), col);
                        }
                    },
                    Term::Const(c) => wheres.push(format!("{col} = {c}")),
                    Term::Anon => {}
                }
            }
            from.push((alias, atom));
        }
    }
    for lit in &rule.body {
        match lit {
            Literal::Pos(_) => {}
            Literal::Neg(atom) => wheres.push(not_exists(atom, &binding)),
            Literal::Cond(e) => wheres.push(expr_sql(e, &binding)),
            Literal::Assign { var, expr } => {
                let sql = expr_sql(expr, &binding);
                // Bind the variable to the expression if unbound, otherwise
                // emit an equality check.
                match binding.get(var) {
                    Some(first) => wheres.push(format!("{first} = {sql}")),
                    None => {
                        binding.insert(var.clone(), sql);
                    }
                }
            }
            Literal::Skolem {
                var,
                generator,
                args,
            } => {
                let args_sql: Vec<String> = args.iter().map(|t| term_sql(t, &binding)).collect();
                let call = format!("inverda_id('{generator}', {})", args_sql.join(", "));
                match binding.get(var) {
                    Some(first) => wheres.push(format!("{first} = {call}")),
                    None => {
                        binding.insert(var.clone(), call);
                    }
                }
            }
        }
    }

    let select_list: Vec<String> = rule
        .head
        .terms
        .iter()
        .map(|t| term_sql(t, &binding))
        .collect();
    let from_list: Vec<String> = from
        .iter()
        .map(|(alias, atom)| format!("{} {alias}", quote_rel(&atom.relation)))
        .collect();
    let mut s = String::new();
    let _ = writeln!(s, "  SELECT {}", select_list.join(", "));
    if !from_list.is_empty() {
        let _ = writeln!(s, "  FROM {}", from_list.join(", "));
    }
    if !wheres.is_empty() {
        let _ = writeln!(s, "  WHERE {}", wheres.join("\n    AND "));
    }
    s
}

fn not_exists(atom: &Atom, binding: &BTreeMap<String, String>) -> String {
    let alias = "n";
    let mut conds = Vec::new();
    for (pos, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Var(v) => {
                if let Some(col) = binding.get(v) {
                    conds.push(format!("{alias}.c{pos} = {col}"));
                }
            }
            Term::Const(c) => conds.push(format!("{alias}.c{pos} = {c}")),
            Term::Anon => {}
        }
    }
    let where_clause = if conds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", conds.join(" AND "))
    };
    format!(
        "NOT EXISTS (SELECT 1 FROM {} {alias}{where_clause})",
        quote_rel(&atom.relation)
    )
}

fn term_sql(term: &Term, binding: &BTreeMap<String, String>) -> String {
    match term {
        Term::Var(v) => binding
            .get(v)
            .cloned()
            .unwrap_or_else(|| format!("/*unbound {v}*/NULL")),
        Term::Const(c) => c.to_string(),
        Term::Anon => "NULL".to_string(),
    }
}

/// Render an expression with column references substituted by their SQL
/// bindings.
pub fn expr_sql(e: &Expr, binding: &BTreeMap<String, String>) -> String {
    match e {
        Expr::Column(c) => binding
            .get(c)
            .cloned()
            .unwrap_or_else(|| format!("/*unbound {c}*/NULL")),
        Expr::Lit(v) => v.to_string(),
        Expr::Cmp(a, op, b) => format!(
            "{} {} {}",
            expr_sql(a, binding),
            op.sql(),
            expr_sql(b, binding)
        ),
        Expr::Binary(a, op, b) => format!(
            "({} {} {})",
            expr_sql(a, binding),
            op.sql(),
            expr_sql(b, binding)
        ),
        Expr::And(a, b) => format!("({} AND {})", expr_sql(a, binding), expr_sql(b, binding)),
        Expr::Or(a, b) => format!("({} OR {})", expr_sql(a, binding), expr_sql(b, binding)),
        Expr::Not(a) => format!("NOT ({})", expr_sql(a, binding)),
        Expr::IsNull(a) => format!("{} IS NULL", expr_sql(a, binding)),
        Expr::Call(name, args) => {
            let parts: Vec<String> = args.iter().map(|a| expr_sql(a, binding)).collect();
            format!("{name}({})", parts.join(", "))
        }
    }
}

/// Quote a generated relation name (they contain `@` for shared-aux states).
fn quote_rel(rel: &str) -> String {
    if rel.chars().all(|c| c.is_alphanumeric() || c == '_') {
        rel.to_string()
    } else {
        format!("\"{rel}\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_datalog::ast::{Atom, Literal, Rule};

    fn split_src_rules() -> RuleSet {
        // T ← R; T ← S, ¬R(p,_); plus a condition rule.
        RuleSet::new(vec![
            Rule::new(
                Atom::vars("T", &["p", "a"]),
                vec![Literal::Pos(Atom::vars("R", &["p", "a"]))],
            ),
            Rule::new(
                Atom::vars("T", &["p", "a"]),
                vec![
                    Literal::Pos(Atom::vars("S", &["p", "a"])),
                    Literal::Neg(Atom::new("R", vec![Term::var("p"), Term::Anon])),
                ],
            ),
        ])
    }

    #[test]
    fn view_is_union_of_rule_branches() {
        let sql = view_sql("v_T", "T", &["a".to_string()], &split_src_rules());
        assert!(sql.starts_with("CREATE VIEW v_T (p, a) AS"));
        assert_eq!(sql.matches("SELECT").count(), 3); // 2 branches + NOT EXISTS
        assert_eq!(sql.matches("UNION").count(), 1);
        assert!(sql.contains("NOT EXISTS (SELECT 1 FROM R n WHERE n.c0 = t0.c0)"));
    }

    #[test]
    fn conditions_and_joins_render() {
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("J", &["p", "a", "b"]),
            vec![
                Literal::Pos(Atom::vars("S", &["p", "a"])),
                Literal::Pos(Atom::vars("T", &["p", "b"])),
                Literal::Cond(Expr::col("a").lt(Expr::col("b"))),
            ],
        )]);
        let sql = view_sql("v_J", "J", &["a".into(), "b".into()], &rules);
        // Shared key variable p joins the two atoms.
        assert!(sql.contains("t0.c0 = t1.c0"), "{sql}");
        assert!(sql.contains("t0.c1 < t1.c1"), "{sql}");
    }

    #[test]
    fn skolem_renders_as_generator_call() {
        let rules = RuleSet::new(vec![Rule::new(
            Atom::vars("A", &["t", "name"]),
            vec![
                Literal::Pos(Atom::vars("T", &["p", "name"])),
                Literal::Skolem {
                    var: "t".into(),
                    generator: "gen_author".into(),
                    args: vec![Term::var("name")],
                },
            ],
        )]);
        let sql = view_sql("v_A", "A", &["name".into()], &rules);
        assert!(sql.contains("inverda_id('gen_author', t0.c1)"), "{sql}");
    }

    #[test]
    fn empty_head_yields_empty_view() {
        let sql = view_sql("v_X", "X", &[], &RuleSet::default());
        assert!(sql.contains("WHERE FALSE"));
    }
}
