//! Property test: pretty-printing a parsed BiDEL script re-parses to the
//! same AST (display/parse round trip), over randomly generated SMOs.

use inverda_bidel::ast::{DecomposeKind, JoinKind, Smo, SplitArm, Statement, TableSig};
use inverda_bidel::parse_script;
use inverda_storage::Expr;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,8}".prop_map(|s| s)
}

fn cols() -> impl Strategy<Value = Vec<String>> {
    prop::collection::btree_set("[a-z][a-z0-9]{0,5}", 1..4).prop_map(|s| s.into_iter().collect())
}

fn cond() -> impl Strategy<Value = Expr> {
    ("[a-z][a-z0-9]{0,4}", 0i64..100, prop::bool::ANY).prop_map(|(c, v, lt)| {
        if lt {
            Expr::col(c).lt(Expr::lit(v))
        } else {
            Expr::col(c).ge(Expr::lit(v))
        }
    })
}

fn arb_smo() -> impl Strategy<Value = Smo> {
    prop_oneof![
        (ident(), cols()).prop_map(|(table, columns)| Smo::CreateTable { table, columns }),
        ident().prop_map(|table| Smo::DropTable { table }),
        (ident(), ident()).prop_map(|(table, to)| Smo::RenameTable { table, to }),
        (ident(), ident(), ident()).prop_map(|(table, column, to)| Smo::RenameColumn {
            table,
            column,
            to
        }),
        (ident(), ident(), cond()).prop_map(|(table, column, function)| Smo::AddColumn {
            table,
            column,
            function
        }),
        (ident(), ident(), 0i64..50).prop_map(|(table, column, d)| Smo::DropColumn {
            table,
            column,
            default: Expr::lit(d)
        }),
        (ident(), ident(), cols(), ident(), cols(), prop::bool::ANY).prop_map(
            |(table, n1, c1, n2, c2, pk)| Smo::Decompose {
                table,
                first: TableSig {
                    name: n1,
                    columns: c1
                },
                second: TableSig {
                    name: n2,
                    columns: c2
                },
                on: if pk {
                    DecomposeKind::Pk
                } else {
                    DecomposeKind::Fk("fkcol".into())
                },
            }
        ),
        (ident(), ident(), ident(), prop::bool::ANY, prop::bool::ANY).prop_map(
            |(left, right, into, outer, pk)| Smo::Join {
                left,
                right,
                into,
                on: if pk {
                    JoinKind::Pk
                } else {
                    JoinKind::Fk("fkcol".into())
                },
                outer,
            }
        ),
        (
            ident(),
            ident(),
            cond(),
            prop::option::of((ident(), cond()))
        )
            .prop_map(|(table, t1, c1, second)| Smo::Split {
                table,
                first: SplitArm {
                    table: t1,
                    condition: c1
                },
                second: second.map(|(t, c)| SplitArm {
                    table: t,
                    condition: c
                }),
            }),
        (ident(), cond(), ident(), cond(), ident()).prop_map(|(t1, c1, t2, c2, into)| {
            Smo::Merge {
                first: SplitArm {
                    table: t1,
                    condition: c1,
                },
                second: SplitArm {
                    table: t2,
                    condition: c2,
                },
                into,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn display_parse_round_trip(smos in prop::collection::vec(arb_smo(), 1..5)) {
        let stmt = Statement::CreateSchemaVersion {
            name: "V2".into(),
            from: Some("V1".into()),
            smos: smos.clone(),
        };
        let text = stmt.to_string();
        let reparsed = parse_script(&text)
            .unwrap_or_else(|e| panic!("failed to reparse {text:?}: {e}"));
        prop_assert_eq!(reparsed.statements.len(), 1);
        match &reparsed.statements[0] {
            Statement::CreateSchemaVersion { smos: parsed, .. } => {
                prop_assert_eq!(parsed, &smos, "round trip of: {}", text);
            }
            other => prop_assert!(false, "unexpected statement {other:?}"),
        }
    }

    #[test]
    fn materialize_round_trip(targets in prop::collection::vec("[A-Za-z][A-Za-z0-9_.]{0,12}", 1..4)) {
        let stmt = Statement::Materialize { targets: targets.clone() };
        let reparsed = parse_script(&stmt.to_string()).unwrap();
        prop_assert_eq!(
            &reparsed.statements[0],
            &Statement::Materialize { targets }
        );
    }
}
