//! # inverda-bidel
//!
//! **BiDEL** — the Bidirectional Database Evolution Language of the paper
//! (Section 4, Figure 2, Appendix B).
//!
//! BiDEL extends the relationally complete DEL CoDEL with *bidirectional*
//! Schema Modification Operations (SMOs): every SMO carries enough parameters
//! to propagate reads and writes between the old and the new schema version
//! in **both** directions. This crate provides:
//!
//! * the SMO and statement AST ([`ast`]),
//! * a lexer and recursive-descent parser for the Figure 2 syntax
//!   ([`lexer`], [`parser`]),
//! * the semantics of every SMO as a pair of Datalog rule sets γ_tgt / γ_src
//!   plus the side schemas (data tables, auxiliary tables) they operate on
//!   ([`semantics`]); the rule templates follow Section 4 and Appendix B,
//! * a formal verification harness ([`verify`]) that mechanically re-derives
//!   the paper's bidirectionality proofs (conditions 26/27) by composing the
//!   two mappings and simplifying with Lemmas 1–5.

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod semantics;
pub mod verify;

pub use ast::{DecomposeKind, JoinKind, Script, Smo, SplitArm, Statement, TableSig};
pub use error::BidelError;
pub use parser::parse_script;
pub use semantics::{derive_smo, DerivedSmo, SharedAux, TableRef};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BidelError>;
