//! Lexer for BiDEL scripts.
//!
//! Identifiers may end in `!` (the paper's `Do!` schema version). Keywords
//! are not reserved at the lexer level — the parser matches identifiers
//! case-insensitively, so tables may be named `task` even though `TABLE` is
//! a keyword elsewhere.

use crate::error::BidelError;
use crate::Result;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `||`
    Concat,
    /// End of input.
    Eof,
}

/// A token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Tokenize a script. Comments (`-- …` to end of line) are skipped.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let push = |out: &mut Vec<SpannedToken>, token: Token| {
            out.push(SpannedToken {
                token,
                offset: start,
            });
        };
        match c {
            '(' => {
                push(&mut out, Token::LParen);
                i += 1;
            }
            ')' => {
                push(&mut out, Token::RParen);
                i += 1;
            }
            ',' => {
                push(&mut out, Token::Comma);
                i += 1;
            }
            ';' => {
                push(&mut out, Token::Semicolon);
                i += 1;
            }
            '.' => {
                push(&mut out, Token::Dot);
                i += 1;
            }
            '=' => {
                push(&mut out, Token::Eq);
                i += 1;
            }
            '+' => {
                push(&mut out, Token::Plus);
                i += 1;
            }
            '-' => {
                push(&mut out, Token::Minus);
                i += 1;
            }
            '*' => {
                push(&mut out, Token::Star);
                i += 1;
            }
            '/' => {
                push(&mut out, Token::Slash);
                i += 1;
            }
            '%' => {
                push(&mut out, Token::Percent);
                i += 1;
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push(&mut out, Token::Concat);
                    i += 2;
                } else {
                    return Err(BidelError::Lex {
                        offset: i,
                        message: "expected '||'".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    push(&mut out, Token::Ne);
                    i += 2;
                } else {
                    push(&mut out, Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Token::Ge);
                    i += 2;
                } else {
                    push(&mut out, Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push(&mut out, Token::Ne);
                    i += 2;
                } else {
                    return Err(BidelError::Lex {
                        offset: i,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            '\'' => {
                // String literal; '' escapes a quote.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(BidelError::Lex {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            let ch_start = i;
                            let mut ch_end = i + 1;
                            while ch_end < bytes.len() && !input.is_char_boundary(ch_end) {
                                ch_end += 1;
                            }
                            s.push_str(&input[ch_start..ch_end]);
                            i = ch_end;
                        }
                    }
                }
                push(&mut out, Token::Str(s));
            }
            _ if c.is_ascii_digit() => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_digit()
                        || (bytes[end] == b'.'
                            && end + 1 < bytes.len()
                            && (bytes[end + 1] as char).is_ascii_digit()
                            && !is_float))
                {
                    if bytes[end] == b'.' {
                        is_float = true;
                    }
                    end += 1;
                }
                let text = &input[i..end];
                if is_float {
                    let v: f64 = text.parse().map_err(|_| BidelError::Lex {
                        offset: i,
                        message: format!("bad float literal '{text}'"),
                    })?;
                    push(&mut out, Token::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| BidelError::Lex {
                        offset: i,
                        message: format!("bad integer literal '{text}'"),
                    })?;
                    push(&mut out, Token::Int(v));
                }
                i = end;
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len() {
                    let ch = bytes[end] as char;
                    if ch.is_alphanumeric() || ch == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                // Allow one trailing '!' (schema versions like `Do!`).
                if end < bytes.len() && bytes[end] == b'!' && bytes.get(end + 1) != Some(&b'=') {
                    end += 1;
                }
                push(&mut out, Token::Ident(input[i..end].to_string()));
                i = end;
            }
            _ => {
                return Err(BidelError::Lex {
                    offset: i,
                    message: format!("unexpected character '{c}'"),
                })
            }
        }
    }
    out.push(SpannedToken {
        token: Token::Eof,
        offset: input.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn keywords_and_bang_idents() {
        let t = toks("CREATE SCHEMA VERSION Do! FROM TasKy");
        assert_eq!(
            t,
            vec![
                Token::Ident("CREATE".into()),
                Token::Ident("SCHEMA".into()),
                Token::Ident("VERSION".into()),
                Token::Ident("Do!".into()),
                Token::Ident("FROM".into()),
                Token::Ident("TasKy".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn operators_and_numbers() {
        let t = toks("prio = 1 AND x <= 2.5 OR y <> z");
        assert!(t.contains(&Token::Eq));
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Int(1)));
        assert!(t.contains(&Token::Float(2.5)));
    }

    #[test]
    fn strings_with_escapes() {
        let t = toks("'TasKy2.task', 'it''s'");
        assert_eq!(t[0], Token::Str("TasKy2.task".into()));
        assert_eq!(t[2], Token::Str("it's".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("a -- comment\n b");
        assert_eq!(
            t,
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn bang_not_equal_disambiguation() {
        let t = toks("a != b");
        assert_eq!(
            t,
            vec![
                Token::Ident("a".into()),
                Token::Ne,
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }
}
