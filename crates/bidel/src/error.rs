//! Error type for BiDEL parsing and semantics derivation.

use std::fmt;

/// Errors raised while lexing, parsing, or deriving SMO semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BidelError {
    /// Lexer error with position.
    Lex {
        /// Byte offset in the script.
        offset: usize,
        /// Description.
        message: String,
    },
    /// Parser error.
    Parse {
        /// Byte offset of the offending token.
        offset: usize,
        /// Description.
        message: String,
    },
    /// Semantic error when deriving an SMO (unknown table, bad columns…).
    Semantics {
        /// Description.
        message: String,
    },
}

impl BidelError {
    /// Convenience constructor for semantic errors.
    pub fn semantics(message: impl Into<String>) -> Self {
        BidelError::Semantics {
            message: message.into(),
        }
    }
}

impl fmt::Display for BidelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BidelError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            BidelError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            BidelError::Semantics { message } => write!(f, "semantic error: {message}"),
        }
    }
}

impl std::error::Error for BidelError {}
