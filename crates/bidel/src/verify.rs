//! Mechanical bidirectionality verification (Section 5, Appendix A).
//!
//! For an SMO with mappings γ_tgt / γ_src, the paper's conditions are
//!
//! * (27) `D_src = γ_src^data(γ_tgt(D_src))` — write the source data to the
//!   target side, read it back: nothing lost, nothing gained;
//! * (26) `D_tgt = γ_tgt^data(γ_src(D_tgt))` — vice versa.
//!
//! This module reproduces the paper's *syntactic* proof: label the original
//! relations (`T → T_D`), drop the auxiliaries that are empty on the
//! materialized side (Lemma 2), unfold the inner mapping into the outer one
//! (Lemma 1) and simplify with Lemmas 3–5 until only identity rules remain.
//!
//! The syntactic check applies to the SMOs without id-generating skolem
//! functions (SPLIT, MERGE, ADD/DROP COLUMN, DECOMPOSE/OUTER JOIN ON PK,
//! JOIN ON PK/FK). The id-generating SMOs (FK/cond decompose, cond join)
//! require reasoning about skolem equalities that plain rule rewriting
//! cannot express; their round-trip laws are verified *semantically* by the
//! property tests in `inverda-core`.

use crate::semantics::DerivedSmo;
use inverda_datalog::simplify::{
    apply_empty, check_identity, rename_relations, simplify_fixpoint, Derivation,
};
use inverda_datalog::RuleSet;
use std::collections::{BTreeMap, BTreeSet};

/// Which round-trip condition to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundTrip {
    /// Condition (27): data starts on the source side.
    FromSource,
    /// Condition (26): data starts on the target side.
    FromTarget,
}

/// Outcome of a verification run.
#[derive(Debug)]
pub struct VerificationReport {
    /// The SMO kind verified.
    pub smo: String,
    /// The direction checked.
    pub round_trip: RoundTrip,
    /// Whether all data tables simplified to identity rules.
    pub identity_ok: bool,
    /// Diagnostic when `identity_ok` is false.
    pub failure: Option<String>,
    /// Rules remaining for auxiliary heads (legitimately non-empty for
    /// value-calculating SMOs, cf. Rule 131).
    pub residual_aux_rules: Vec<String>,
    /// The final simplified rule set.
    pub simplified: RuleSet,
    /// The proof transcript (every lemma application).
    pub derivation: Derivation,
}

impl VerificationReport {
    /// True when the round trip provably preserves the data tables.
    pub fn is_proved(&self) -> bool {
        self.identity_ok
    }
}

/// Remove `¬allnull` guards that are vacuous under the ω-free assumption:
/// a condition of shape `¬IsNull(x1) ∨ … ∨ ¬IsNull(xn)` is true whenever
/// `{x1,…,xn}` is exactly the payload of a labeled (`…@D`) body atom,
/// because labeled data tables hold no all-NULL rows.
fn omega_free_pass(rules: &RuleSet, derivation: &mut Derivation) -> RuleSet {
    use inverda_datalog::ast::{Literal, Rule, Term};
    let mut out = Vec::new();
    for rule in &rules.rules {
        let labeled_payloads: Vec<BTreeSet<String>> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) if a.relation.ends_with("@D") => Some(
                    a.terms[1..]
                        .iter()
                        .filter_map(|t| match t {
                            Term::Var(v) => Some(v.clone()),
                            _ => None,
                        })
                        .collect::<BTreeSet<String>>(),
                ),
                _ => None,
            })
            .collect();
        let body: Vec<Literal> = rule
            .body
            .iter()
            .filter(|l| {
                if let Literal::Cond(e) = l {
                    if let Some(vars) = nonnull_disjunct_vars(e) {
                        if labeled_payloads.contains(&vars) {
                            derivation
                                .steps
                                .push(format!("ω-free assumption: removed {{{e}}} in: {rule}"));
                            return false;
                        }
                    }
                }
                true
            })
            .cloned()
            .collect();
        out.push(Rule::new(rule.head.clone(), body));
    }
    RuleSet::new(out)
}

/// If `e` is a disjunction tree of `¬IsNull(var)` leaves, the variable set.
fn nonnull_disjunct_vars(e: &inverda_storage::Expr) -> Option<BTreeSet<String>> {
    use inverda_storage::Expr;
    match e {
        Expr::Or(a, b) => {
            let mut va = nonnull_disjunct_vars(a)?;
            let vb = nonnull_disjunct_vars(b)?;
            va.extend(vb);
            Some(va)
        }
        Expr::Not(inner) => match inner.as_ref() {
            Expr::IsNull(x) => match x.as_ref() {
                Expr::Column(v) => {
                    let mut s = BTreeSet::new();
                    s.insert(v.clone());
                    Some(s)
                }
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

/// Whether the SMO is eligible for the syntactic proof (no skolem terms).
pub fn syntactically_verifiable(smo: &DerivedSmo) -> bool {
    smo.generators.is_empty() && !smo.to_tgt.is_empty() && !smo.to_src.is_empty()
}

/// Run the syntactic round-trip proof for one SMO instance.
pub fn verify_round_trip(smo: &DerivedSmo, round_trip: RoundTrip) -> VerificationReport {
    let mut derivation = Derivation::new();

    // Choose inner/outer mapping and the side whose data is labeled.
    let (inner, outer, data_tables, empty_aux): (&RuleSet, &RuleSet, Vec<_>, Vec<String>) =
        match round_trip {
            RoundTrip::FromSource => (
                &smo.to_tgt,
                &smo.to_src,
                smo.src_data.clone(),
                // Target-side materialization: source-side aux are empty.
                smo.src_aux
                    .iter()
                    .map(|a| a.rel.clone())
                    .chain(smo.shared_aux.iter().map(|s| s.old_name.clone()))
                    .collect(),
            ),
            RoundTrip::FromTarget => (
                &smo.to_src,
                &smo.to_tgt,
                smo.tgt_data.clone(),
                smo.tgt_aux
                    .iter()
                    .map(|a| a.rel.clone())
                    .chain(smo.shared_aux.iter().map(|s| s.old_name.clone()))
                    .collect(),
            ),
        };

    // 1. Label original data relations: X → X@D.
    let label: BTreeMap<String, String> = data_tables
        .iter()
        .map(|t| (t.rel.clone(), format!("{}@D", t.rel)))
        .collect();
    derivation.steps.push(format!(
        "label original relations: {}",
        label
            .iter()
            .map(|(a, b)| format!("{a} → {b}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    let inner_labeled = rename_relations(inner, &label);
    // Heads of the inner mapping must keep their names — rename only body
    // occurrences of the labeled inputs. `rename_relations` renames heads
    // too, but inner heads live on the *other* side, so they are disjoint
    // from the data tables being labeled (identity SMOs excepted — they use
    // distinct src#/tgt# prefixes).

    // 2. Lemma 2: the unmaterialized side's auxiliaries are empty.
    let empties: BTreeSet<String> = empty_aux.into_iter().collect();
    let inner_clean = apply_empty(&inner_labeled, &empties, &mut derivation);

    // 3. Lemma 1: unfold the inner mapping into the outer one.
    let composed = inverda_datalog::simplify::unfold(outer, &inner_clean, &mut derivation);

    // 3b. Lemma 2 again: after unfolding, the only extensional relations of
    // the composition are the labeled `…@D` tables. Any remaining body
    // literal over an unlabeled relation (an inner head without defining
    // rules, e.g. the single-arm split's R⁻) is empty by construction.
    let residual_inputs: BTreeSet<String> = composed
        .rules
        .iter()
        .flat_map(|r| {
            r.body_relations()
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        })
        .filter(|rel| !rel.ends_with("@D"))
        .collect();
    let composed = if residual_inputs.is_empty() {
        composed
    } else {
        apply_empty(&composed, &residual_inputs, &mut derivation)
    };

    // 4. Lemmas 3–5 to fixpoint.
    let simplified = simplify_fixpoint(composed, &mut derivation);

    // 4b. ω-free integrity assumption: labeled data tables contain no
    // all-NULL rows (the ω convention of Appendix B.2: an all-ω side *is*
    // the absent side). The paper applies this silently — its rules 133/134
    // guard `A ≠ ω` and the claimed identities 139/140 assume the guard is
    // vacuous over real data. Removing those guards can enable further
    // merges, so re-run the fixpoint afterwards.
    let cleaned = omega_free_pass(&simplified, &mut derivation);
    let simplified = if cleaned != simplified {
        simplify_fixpoint(cleaned, &mut derivation)
    } else {
        simplified
    };

    // 5. Identity check on the data tables.
    let expected: BTreeMap<String, String> = data_tables
        .iter()
        .map(|t| (t.rel.clone(), format!("{}@D", t.rel)))
        .collect();
    let check = check_identity(&simplified, &expected);

    // Residual aux rules (informational).
    let data_heads: BTreeSet<&String> = expected.keys().collect();
    let residual_aux_rules: Vec<String> = simplified
        .rules
        .iter()
        .filter(|r| !data_heads.contains(&r.head.relation))
        .map(|r| r.to_string())
        .collect();

    VerificationReport {
        smo: smo.kind.to_string(),
        round_trip,
        identity_ok: check.is_ok(),
        failure: check.err(),
        residual_aux_rules,
        simplified,
        derivation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Smo, SplitArm, TableSig};
    use crate::semantics::derive_smo;
    use inverda_storage::Expr;
    use std::collections::BTreeMap;

    fn schemas(entries: &[(&str, &[&str])]) -> BTreeMap<String, Vec<String>> {
        entries
            .iter()
            .map(|(t, cols)| (t.to_string(), cols.iter().map(|c| c.to_string()).collect()))
            .collect()
    }

    fn assert_proved(smo: &Smo, src: &BTreeMap<String, Vec<String>>) {
        let d = derive_smo(smo, src).unwrap();
        assert!(syntactically_verifiable(&d), "{} not verifiable", d.kind);
        for rt in [RoundTrip::FromSource, RoundTrip::FromTarget] {
            let report = verify_round_trip(&d, rt);
            assert!(
                report.is_proved(),
                "{:?} of {} failed: {:?}\nsimplified:\n{}",
                rt,
                d.kind,
                report.failure,
                report.simplified
            );
        }
    }

    #[test]
    fn split_two_arms_is_bidirectional() {
        // The paper's Appendix A result, mechanically re-derived.
        let smo = Smo::Split {
            table: "T".into(),
            first: SplitArm {
                table: "R".into(),
                condition: Expr::col("a").lt(Expr::lit(5)),
            },
            second: Some(SplitArm {
                table: "S".into(),
                condition: Expr::col("a").ge(Expr::lit(3)),
            }),
        };
        assert_proved(&smo, &schemas(&[("T", &["a", "b"])]));
    }

    #[test]
    fn split_single_arm_is_bidirectional() {
        let smo = Smo::Split {
            table: "Task".into(),
            first: SplitArm {
                table: "Todo".into(),
                condition: Expr::col("prio").eq(Expr::lit(1)),
            },
            second: None,
        };
        assert_proved(&smo, &schemas(&[("Task", &["author", "task", "prio"])]));
    }

    #[test]
    fn merge_is_bidirectional() {
        let smo = Smo::Merge {
            first: SplitArm {
                table: "R".into(),
                condition: Expr::col("a").lt(Expr::lit(0)),
            },
            second: SplitArm {
                table: "S".into(),
                condition: Expr::col("a").ge(Expr::lit(0)),
            },
            into: "T".into(),
        };
        assert_proved(&smo, &schemas(&[("R", &["a"]), ("S", &["a"])]));
    }

    #[test]
    fn add_column_round_trip_keeps_data_and_fills_aux() {
        let smo = Smo::AddColumn {
            table: "R".into(),
            column: "b".into(),
            function: Expr::col("a"),
        };
        let d = derive_smo(&smo, &schemas(&[("R", &["a"])])).unwrap();
        let report = verify_round_trip(&d, RoundTrip::FromSource);
        assert!(report.is_proved(), "{:?}", report.failure);
        // Rule 131: the aux table B is populated by the round trip.
        assert!(
            !report.residual_aux_rules.is_empty(),
            "expected residual B rules"
        );
        let report = verify_round_trip(&d, RoundTrip::FromTarget);
        assert!(report.is_proved(), "{:?}", report.failure);
    }

    #[test]
    fn drop_column_is_bidirectional() {
        let smo = Smo::DropColumn {
            table: "Todo".into(),
            column: "prio".into(),
            default: Expr::lit(1),
        };
        assert_proved(&smo, &schemas(&[("Todo", &["author", "task", "prio"])]));
    }

    #[test]
    fn join_pk_is_bidirectional() {
        let smo = Smo::Join {
            left: "S".into(),
            right: "T".into(),
            into: "R".into(),
            on: crate::ast::JoinKind::Pk,
            outer: false,
        };
        assert_proved(&smo, &schemas(&[("S", &["a"]), ("T", &["b"])]));
    }

    #[test]
    fn rename_column_is_bidirectional() {
        let smo = Smo::RenameColumn {
            table: "author".into(),
            column: "author".into(),
            to: "name".into(),
        };
        assert_proved(&smo, &schemas(&[("author", &["author"])]));
    }

    #[test]
    fn decompose_pk_source_round_trip() {
        let smo = Smo::Decompose {
            table: "R".into(),
            first: TableSig {
                name: "S".into(),
                columns: vec!["a".into()],
            },
            second: TableSig {
                name: "T".into(),
                columns: vec!["b".into()],
            },
            on: crate::ast::DecomposeKind::Pk,
        };
        let d = derive_smo(&smo, &schemas(&[("R", &["a", "b"])])).unwrap();
        // FromTarget (condition 26) is the plain outer-join identity.
        let report = verify_round_trip(&d, RoundTrip::FromTarget);
        assert!(
            report.is_proved(),
            "{:?}\n{}",
            report.failure,
            report.simplified
        );
    }

    #[test]
    fn skolem_smos_are_excluded_from_syntactic_proof() {
        let smo = Smo::Decompose {
            table: "Task".into(),
            first: TableSig {
                name: "Task".into(),
                columns: vec!["task".into()],
            },
            second: TableSig {
                name: "Author".into(),
                columns: vec!["author".into()],
            },
            on: crate::ast::DecomposeKind::Fk("author_id".into()),
        };
        let d = derive_smo(&smo, &schemas(&[("Task", &["task", "author"])])).unwrap();
        assert!(!syntactically_verifiable(&d));
    }

    #[test]
    fn derivation_transcript_is_recorded() {
        let smo = Smo::Split {
            table: "T".into(),
            first: SplitArm {
                table: "R".into(),
                condition: Expr::col("a").lt(Expr::lit(5)),
            },
            second: Some(SplitArm {
                table: "S".into(),
                condition: Expr::col("a").ge(Expr::lit(5)),
            }),
        };
        let d = derive_smo(&smo, &schemas(&[("T", &["a"])])).unwrap();
        let report = verify_round_trip(&d, RoundTrip::FromSource);
        assert!(report.derivation.steps.len() > 5);
        assert!(report
            .derivation
            .steps
            .iter()
            .any(|s| s.contains("Lemma 2")));
    }
}
