//! AST for BiDEL statements and SMOs (paper Figure 2).

use inverda_storage::Expr;
use std::fmt;

/// A parsed BiDEL script: a sequence of statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Statements in order.
    pub statements: Vec<Statement>,
}

/// A top-level BiDEL / InVerDa statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE SCHEMA VERSION name [FROM old] WITH smo1; …; smon;`
    CreateSchemaVersion {
        /// New schema version name.
        name: String,
        /// Source schema version (absent for initial versions built from
        /// `CREATE TABLE` SMOs only).
        from: Option<String>,
        /// The evolution's SMOs, in order.
        smos: Vec<Smo>,
    },
    /// `DROP SCHEMA VERSION v;`
    DropSchemaVersion {
        /// Schema version to drop.
        name: String,
    },
    /// `MATERIALIZE 'v'` or `MATERIALIZE 'v.table1', 'v.table2'` — the DBA's
    /// Database Migration Operation (Section 7).
    Materialize {
        /// Schema-version or version-qualified table-version names.
        targets: Vec<String>,
    },
}

/// Signature of a decompose target: `S(s1, …, sn)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSig {
    /// Table name.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
}

impl fmt::Display for TableSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.columns.join(", "))
    }
}

/// One arm of a `SPLIT`: `R WITH cR`.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitArm {
    /// Target table name.
    pub table: String,
    /// Partition condition over the source columns.
    pub condition: Expr,
}

/// How a `DECOMPOSE` relates its two targets (paper Table 5).
#[derive(Debug, Clone, PartialEq)]
pub enum DecomposeKind {
    /// `ON PK` — both targets keep the source key (Appendix B.2).
    Pk,
    /// `ON FK fk` / `ON FOREIGN KEY fk` — the first target gets a generated
    /// foreign key column `fk` referencing the second target (Appendix B.3).
    Fk(String),
    /// `ON condition` — targets get fresh identifiers, related by the
    /// condition (Appendix B.4).
    Cond(Expr),
}

/// How a `JOIN` matches its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinKind {
    /// `ON PK` — equal keys (Appendix B.5).
    Pk,
    /// `ON FK fk` — first input's column `fk` references the second input's
    /// key (variant of B.5/B.6, see Table 5).
    Fk(String),
    /// `ON condition` (Appendix B.6).
    Cond(Expr),
}

/// A Schema Modification Operation (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub enum Smo {
    /// `CREATE TABLE R(c1, …, cn)`
    CreateTable {
        /// New table name.
        table: String,
        /// Column names.
        columns: Vec<String>,
    },
    /// `DROP TABLE R` — the new version no longer contains R.
    DropTable {
        /// Dropped table name.
        table: String,
    },
    /// `RENAME TABLE R INTO R'`
    RenameTable {
        /// Old name.
        table: String,
        /// New name.
        to: String,
    },
    /// `RENAME COLUMN r IN R TO r'`
    RenameColumn {
        /// Table containing the column.
        table: String,
        /// Old column name.
        column: String,
        /// New column name.
        to: String,
    },
    /// `ADD COLUMN a AS f(r1,…,rn) INTO R` — `f` computes the new column's
    /// value from the existing columns when data flows forward.
    AddColumn {
        /// Table to extend.
        table: String,
        /// New column name.
        column: String,
        /// Value function.
        function: Expr,
    },
    /// `DROP COLUMN r FROM R DEFAULT f(r1,…,rn)` — `f` recomputes the
    /// dropped column when a tuple written in the new version propagates
    /// back to the old one.
    DropColumn {
        /// Table to shrink.
        table: String,
        /// Dropped column.
        column: String,
        /// Backward default function.
        default: Expr,
    },
    /// `DECOMPOSE TABLE R INTO S(…), T(…) ON (PK | FK fk | cond)`
    Decompose {
        /// Source table.
        table: String,
        /// First target signature.
        first: TableSig,
        /// Second target signature.
        second: TableSig,
        /// Relationship kind.
        on: DecomposeKind,
    },
    /// `[OUTER] JOIN TABLE R, S INTO T ON (PK | FK fk | cond)`
    Join {
        /// Left input table.
        left: String,
        /// Right input table.
        right: String,
        /// Result table name.
        into: String,
        /// Match kind.
        on: JoinKind,
        /// Outer join keeps unmatched tuples via ω-padding (inverse of
        /// DECOMPOSE); inner join parks them in auxiliary tables.
        outer: bool,
    },
    /// `SPLIT TABLE T INTO R WITH cR [, S WITH cS]` — horizontal partition.
    Split {
        /// Source table.
        table: String,
        /// First partition.
        first: SplitArm,
        /// Optional second partition.
        second: Option<SplitArm>,
    },
    /// `MERGE TABLE R (cR), S (cS) INTO T` — inverse of SPLIT; the
    /// conditions say which T-tuples belong to R / S on backward propagation.
    Merge {
        /// First input and its membership condition.
        first: SplitArm,
        /// Second input and its membership condition.
        second: SplitArm,
        /// Result table.
        into: String,
    },
}

impl Smo {
    /// A short tag naming the SMO type (used in catalogs and reports).
    pub fn kind(&self) -> &'static str {
        match self {
            Smo::CreateTable { .. } => "CREATE TABLE",
            Smo::DropTable { .. } => "DROP TABLE",
            Smo::RenameTable { .. } => "RENAME TABLE",
            Smo::RenameColumn { .. } => "RENAME COLUMN",
            Smo::AddColumn { .. } => "ADD COLUMN",
            Smo::DropColumn { .. } => "DROP COLUMN",
            Smo::Decompose { .. } => "DECOMPOSE",
            Smo::Join { .. } => "JOIN",
            Smo::Split { .. } => "SPLIT",
            Smo::Merge { .. } => "MERGE",
        }
    }

    /// Names of the source-version tables this SMO consumes.
    pub fn source_tables(&self) -> Vec<&str> {
        match self {
            Smo::CreateTable { .. } => vec![],
            Smo::DropTable { table }
            | Smo::RenameTable { table, .. }
            | Smo::RenameColumn { table, .. }
            | Smo::AddColumn { table, .. }
            | Smo::DropColumn { table, .. }
            | Smo::Decompose { table, .. }
            | Smo::Split { table, .. } => vec![table],
            Smo::Join { left, right, .. } => vec![left, right],
            Smo::Merge { first, second, .. } => vec![&first.table, &second.table],
        }
    }

    /// Names of the target-version tables this SMO produces.
    pub fn target_tables(&self) -> Vec<&str> {
        match self {
            Smo::CreateTable { table, .. } => vec![table],
            Smo::DropTable { .. } => vec![],
            Smo::RenameTable { to, .. } => vec![to],
            Smo::RenameColumn { table, .. } => vec![table],
            Smo::AddColumn { table, .. } | Smo::DropColumn { table, .. } => vec![table],
            Smo::Decompose { first, second, .. } => vec![&first.name, &second.name],
            Smo::Join { into, .. } => vec![into],
            Smo::Split { first, second, .. } => {
                let mut v = vec![first.table.as_str()];
                if let Some(s) = second {
                    v.push(&s.table);
                }
                v
            }
            Smo::Merge { into, .. } => vec![into],
        }
    }
}

impl fmt::Display for Smo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Smo::CreateTable { table, columns } => {
                write!(f, "CREATE TABLE {table}({})", columns.join(", "))
            }
            Smo::DropTable { table } => write!(f, "DROP TABLE {table}"),
            Smo::RenameTable { table, to } => write!(f, "RENAME TABLE {table} INTO {to}"),
            Smo::RenameColumn { table, column, to } => {
                write!(f, "RENAME COLUMN {column} IN {table} TO {to}")
            }
            Smo::AddColumn {
                table,
                column,
                function,
            } => write!(f, "ADD COLUMN {column} AS {function} INTO {table}"),
            Smo::DropColumn {
                table,
                column,
                default,
            } => write!(f, "DROP COLUMN {column} FROM {table} DEFAULT {default}"),
            Smo::Decompose {
                table,
                first,
                second,
                on,
            } => {
                write!(f, "DECOMPOSE TABLE {table} INTO {first}, {second} ON ")?;
                match on {
                    DecomposeKind::Pk => write!(f, "PK"),
                    DecomposeKind::Fk(fk) => write!(f, "FOREIGN KEY {fk}"),
                    DecomposeKind::Cond(c) => write!(f, "{c}"),
                }
            }
            Smo::Join {
                left,
                right,
                into,
                on,
                outer,
            } => {
                if *outer {
                    write!(f, "OUTER ")?;
                }
                write!(f, "JOIN TABLE {left}, {right} INTO {into} ON ")?;
                match on {
                    JoinKind::Pk => write!(f, "PK"),
                    JoinKind::Fk(fk) => write!(f, "FOREIGN KEY {fk}"),
                    JoinKind::Cond(c) => write!(f, "{c}"),
                }
            }
            Smo::Split {
                table,
                first,
                second,
            } => {
                write!(
                    f,
                    "SPLIT TABLE {table} INTO {} WITH {}",
                    first.table, first.condition
                )?;
                if let Some(s) = second {
                    write!(f, ", {} WITH {}", s.table, s.condition)?;
                }
                Ok(())
            }
            Smo::Merge {
                first,
                second,
                into,
            } => write!(
                f,
                "MERGE TABLE {} ({}), {} ({}) INTO {into}",
                first.table, first.condition, second.table, second.condition
            ),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateSchemaVersion { name, from, smos } => {
                write!(f, "CREATE SCHEMA VERSION {name}")?;
                if let Some(from) = from {
                    write!(f, " FROM {from}")?;
                }
                write!(f, " WITH ")?;
                for smo in smos {
                    write!(f, "{smo}; ")?;
                }
                Ok(())
            }
            Statement::DropSchemaVersion { name } => write!(f, "DROP SCHEMA VERSION {name};"),
            Statement::Materialize { targets } => {
                let quoted: Vec<String> = targets.iter().map(|t| format!("'{t}'")).collect();
                write!(f, "MATERIALIZE {};", quoted.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_and_target_tables() {
        let split = Smo::Split {
            table: "Task".into(),
            first: SplitArm {
                table: "Todo".into(),
                condition: Expr::col("prio").eq(Expr::lit(1)),
            },
            second: None,
        };
        assert_eq!(split.source_tables(), vec!["Task"]);
        assert_eq!(split.target_tables(), vec!["Todo"]);
        assert_eq!(split.kind(), "SPLIT");

        let join = Smo::Join {
            left: "A".into(),
            right: "B".into(),
            into: "C".into(),
            on: JoinKind::Pk,
            outer: false,
        };
        assert_eq!(join.source_tables(), vec!["A", "B"]);
        assert_eq!(join.target_tables(), vec!["C"]);
    }

    #[test]
    fn display_round_trip_shapes() {
        let smo = Smo::Decompose {
            table: "task".into(),
            first: TableSig {
                name: "task".into(),
                columns: vec!["task".into(), "prio".into()],
            },
            second: TableSig {
                name: "author".into(),
                columns: vec!["author".into()],
            },
            on: DecomposeKind::Fk("author".into()),
        };
        assert_eq!(
            smo.to_string(),
            "DECOMPOSE TABLE task INTO task(task, prio), author(author) ON FOREIGN KEY author"
        );
    }
}
