//! Recursive-descent parser for BiDEL scripts (grammar of Figure 2).
//!
//! ```text
//! script      := statement*
//! statement   := create_version | drop_version | materialize
//! create_version := CREATE SCHEMA VERSION ident [FROM ident] WITH smo (';' smo?)*
//! drop_version   := DROP SCHEMA VERSION ident ';'?
//! materialize    := MATERIALIZE string (',' string)* ';'?
//! smo        := CREATE TABLE … | DROP TABLE … | RENAME TABLE … |
//!               RENAME COLUMN … | ADD COLUMN … | DROP COLUMN … |
//!               DECOMPOSE TABLE … | [OUTER] JOIN TABLE … |
//!               SPLIT TABLE … | MERGE TABLE …
//! ```
//!
//! Keywords are case-insensitive; an SMO list ends when the next tokens
//! start a new top-level statement or the input ends.

use crate::ast::{DecomposeKind, JoinKind, Script, Smo, SplitArm, Statement, TableSig};
use crate::error::BidelError;
use crate::lexer::{tokenize, SpannedToken, Token};
use crate::Result;
use inverda_storage::{BinaryOp, CmpOp, Expr, Value};

/// Parse a full BiDEL script.
pub fn parse_script(input: &str) -> Result<Script> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    while !p.at_eof() {
        statements.push(p.statement()?);
    }
    Ok(Script { statements })
}

/// Parse a single condition / function expression (used by tests and tools).
pub fn parse_expr(input: &str) -> Result<Expr> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_at(&self, n: usize) -> &Token {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> BidelError {
        BidelError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn is_kw_at(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_at(n), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword '{kw}', found {:?}", self.peek())))
        }
    }

    fn expect_token(&mut self, t: Token) -> Result<()> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Str(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected string literal, found {other:?}"))),
        }
    }

    // ---------------------------------------------------------------- stmts

    fn statement(&mut self) -> Result<Statement> {
        if self.is_kw("CREATE") && self.is_kw_at(1, "SCHEMA") {
            return self.create_schema_version();
        }
        if self.is_kw("DROP") && self.is_kw_at(1, "SCHEMA") {
            self.bump();
            self.bump();
            self.expect_kw("VERSION")?;
            let name = self.ident()?;
            let _ = self.expect_token(Token::Semicolon);
            return Ok(Statement::DropSchemaVersion { name });
        }
        if self.is_kw("MATERIALIZE") {
            self.bump();
            let mut targets = vec![self.string()?];
            while matches!(self.peek(), Token::Comma) {
                self.bump();
                targets.push(self.string()?);
            }
            let _ = self.expect_token(Token::Semicolon);
            return Ok(Statement::Materialize { targets });
        }
        Err(self.error(format!(
            "expected CREATE SCHEMA VERSION / DROP SCHEMA VERSION / MATERIALIZE, found {:?}",
            self.peek()
        )))
    }

    fn create_schema_version(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        self.expect_kw("SCHEMA")?;
        self.expect_kw("VERSION")?;
        let name = self.ident()?;
        let from = if self.eat_kw("FROM") {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect_kw("WITH")?;
        let mut smos = Vec::new();
        loop {
            smos.push(self.smo()?);
            // SMOs are ';'-terminated; the list ends at EOF or the start of
            // the next top-level statement.
            let _ = self.expect_token(Token::Semicolon);
            if self.at_eof() || self.at_statement_start() {
                break;
            }
        }
        Ok(Statement::CreateSchemaVersion { name, from, smos })
    }

    fn at_statement_start(&self) -> bool {
        (self.is_kw("CREATE") && self.is_kw_at(1, "SCHEMA"))
            || (self.is_kw("DROP") && self.is_kw_at(1, "SCHEMA"))
            || self.is_kw("MATERIALIZE")
    }

    // ----------------------------------------------------------------- smos

    fn smo(&mut self) -> Result<Smo> {
        if self.is_kw("CREATE") && self.is_kw_at(1, "TABLE") {
            self.bump();
            self.bump();
            let table = self.ident()?;
            let columns = self.column_list()?;
            return Ok(Smo::CreateTable { table, columns });
        }
        if self.is_kw("DROP") && self.is_kw_at(1, "TABLE") {
            self.bump();
            self.bump();
            let table = self.ident()?;
            return Ok(Smo::DropTable { table });
        }
        if self.is_kw("RENAME") && self.is_kw_at(1, "TABLE") {
            self.bump();
            self.bump();
            let table = self.ident()?;
            self.expect_kw("INTO")?;
            let to = self.ident()?;
            return Ok(Smo::RenameTable { table, to });
        }
        if self.is_kw("RENAME") && self.is_kw_at(1, "COLUMN") {
            self.bump();
            self.bump();
            let column = self.ident()?;
            self.expect_kw("IN")?;
            let table = self.ident()?;
            self.expect_kw("TO")?;
            let to = self.ident()?;
            return Ok(Smo::RenameColumn { table, column, to });
        }
        if self.is_kw("ADD") && self.is_kw_at(1, "COLUMN") {
            self.bump();
            self.bump();
            let column = self.ident()?;
            self.expect_kw("AS")?;
            let function = self.expr()?;
            self.expect_kw("INTO")?;
            let table = self.ident()?;
            return Ok(Smo::AddColumn {
                table,
                column,
                function,
            });
        }
        if self.is_kw("DROP") && self.is_kw_at(1, "COLUMN") {
            self.bump();
            self.bump();
            let column = self.ident()?;
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            self.expect_kw("DEFAULT")?;
            let default = self.expr()?;
            return Ok(Smo::DropColumn {
                table,
                column,
                default,
            });
        }
        if self.is_kw("DECOMPOSE") {
            self.bump();
            self.expect_kw("TABLE")?;
            let table = self.ident()?;
            self.expect_kw("INTO")?;
            let first = self.table_sig()?;
            self.expect_token(Token::Comma)?;
            let second = self.table_sig()?;
            self.expect_kw("ON")?;
            let on = self.decompose_kind()?;
            return Ok(Smo::Decompose {
                table,
                first,
                second,
                on,
            });
        }
        if self.is_kw("OUTER") || self.is_kw("JOIN") {
            let outer = self.eat_kw("OUTER");
            self.expect_kw("JOIN")?;
            self.expect_kw("TABLE")?;
            let left = self.ident()?;
            self.expect_token(Token::Comma)?;
            let right = self.ident()?;
            self.expect_kw("INTO")?;
            let into = self.ident()?;
            self.expect_kw("ON")?;
            let on = self.join_kind()?;
            return Ok(Smo::Join {
                left,
                right,
                into,
                on,
                outer,
            });
        }
        if self.is_kw("SPLIT") {
            self.bump();
            self.expect_kw("TABLE")?;
            let table = self.ident()?;
            self.expect_kw("INTO")?;
            let first = self.split_arm()?;
            let second = if matches!(self.peek(), Token::Comma) {
                self.bump();
                Some(self.split_arm()?)
            } else {
                None
            };
            return Ok(Smo::Split {
                table,
                first,
                second,
            });
        }
        if self.is_kw("MERGE") {
            self.bump();
            self.expect_kw("TABLE")?;
            let first = self.merge_arm()?;
            self.expect_token(Token::Comma)?;
            let second = self.merge_arm()?;
            self.expect_kw("INTO")?;
            let into = self.ident()?;
            return Ok(Smo::Merge {
                first,
                second,
                into,
            });
        }
        Err(self.error(format!("expected an SMO, found {:?}", self.peek())))
    }

    fn column_list(&mut self) -> Result<Vec<String>> {
        self.expect_token(Token::LParen)?;
        let mut cols = vec![self.ident()?];
        while matches!(self.peek(), Token::Comma) {
            self.bump();
            cols.push(self.ident()?);
        }
        self.expect_token(Token::RParen)?;
        Ok(cols)
    }

    fn table_sig(&mut self) -> Result<TableSig> {
        let name = self.ident()?;
        let columns = self.column_list()?;
        Ok(TableSig { name, columns })
    }

    fn split_arm(&mut self) -> Result<SplitArm> {
        let table = self.ident()?;
        self.expect_kw("WITH")?;
        let condition = self.expr()?;
        Ok(SplitArm { table, condition })
    }

    fn merge_arm(&mut self) -> Result<SplitArm> {
        let table = self.ident()?;
        self.expect_token(Token::LParen)?;
        let condition = self.expr()?;
        self.expect_token(Token::RParen)?;
        Ok(SplitArm { table, condition })
    }

    fn decompose_kind(&mut self) -> Result<DecomposeKind> {
        if self.is_kw("PK") {
            self.bump();
            return Ok(DecomposeKind::Pk);
        }
        if self.is_kw("FK") {
            self.bump();
            return Ok(DecomposeKind::Fk(self.ident()?));
        }
        if self.is_kw("FOREIGN") {
            self.bump();
            self.expect_kw("KEY")?;
            return Ok(DecomposeKind::Fk(self.ident()?));
        }
        Ok(DecomposeKind::Cond(self.expr()?))
    }

    fn join_kind(&mut self) -> Result<JoinKind> {
        if self.is_kw("PK") {
            self.bump();
            return Ok(JoinKind::Pk);
        }
        if self.is_kw("FK") {
            self.bump();
            return Ok(JoinKind::Fk(self.ident()?));
        }
        if self.is_kw("FOREIGN") {
            self.bump();
            self.expect_kw("KEY")?;
            return Ok(JoinKind::Fk(self.ident()?));
        }
        Ok(JoinKind::Cond(self.expr()?))
    }

    // ----------------------------------------------------------------- expr

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.is_kw("OR") {
            self.bump();
            let rhs = self.and_expr()?;
            e = e.or(rhs);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.is_kw("AND") {
            self.bump();
            let rhs = self.not_expr()?;
            e = e.and(rhs);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.is_kw("NOT") {
            self.bump();
            return Ok(self.not_expr()?.negate());
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Token::Eq => Some(CmpOp::Eq),
            Token::Ne => Some(CmpOp::Ne),
            Token::Lt => Some(CmpOp::Lt),
            Token::Le => Some(CmpOp::Le),
            Token::Gt => Some(CmpOp::Gt),
            Token::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)));
        }
        if self.is_kw("IS") {
            self.bump();
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            let test = Expr::IsNull(Box::new(lhs));
            return Ok(if negated { test.negate() } else { test });
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => Some(BinaryOp::Add),
                Token::Minus => Some(BinaryOp::Sub),
                Token::Concat => Some(BinaryOp::Concat),
                _ => None,
            };
            match op {
                Some(op) => {
                    self.bump();
                    let rhs = self.mul_expr()?;
                    e = Expr::Binary(Box::new(e), op, Box::new(rhs));
                }
                None => return Ok(e),
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            let op = match self.peek() {
                Token::Star => Some(BinaryOp::Mul),
                Token::Slash => Some(BinaryOp::Div),
                Token::Percent => Some(BinaryOp::Mod),
                _ => None,
            };
            match op {
                Some(op) => {
                    self.bump();
                    let rhs = self.primary()?;
                    e = Expr::Binary(Box::new(e), op, Box::new(rhs));
                }
                None => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(Expr::lit(v))
            }
            Token::Float(v) => {
                self.bump();
                Ok(Expr::lit(v))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Expr::lit(Value::text(s)))
            }
            Token::Minus => {
                self.bump();
                let inner = self.primary()?;
                Ok(Expr::Binary(
                    Box::new(Expr::lit(0)),
                    BinaryOp::Sub,
                    Box::new(inner),
                ))
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect_token(Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    self.bump();
                    return Ok(Expr::lit(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.bump();
                    return Ok(Expr::lit(true));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.bump();
                    return Ok(Expr::lit(false));
                }
                self.bump();
                if matches!(self.peek(), Token::LParen) {
                    // Function call.
                    self.bump();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Token::RParen) {
                        args.push(self.expr()?);
                        while matches!(self.peek(), Token::Comma) {
                            self.bump();
                            args.push(self.expr()?);
                        }
                    }
                    self.expect_token(Token::RParen)?;
                    Ok(Expr::Call(name.to_lowercase(), args))
                } else {
                    Ok(Expr::col(name))
                }
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_do_script() {
        // Figure 1, left side.
        let script = parse_script(
            "CREATE SCHEMA VERSION Do! FROM TasKy WITH \
             SPLIT TABLE Task INTO Todo WITH prio=1; \
             DROP COLUMN prio FROM Todo DEFAULT 1;",
        )
        .unwrap();
        assert_eq!(script.statements.len(), 1);
        let Statement::CreateSchemaVersion { name, from, smos } = &script.statements[0] else {
            panic!("wrong statement kind");
        };
        assert_eq!(name, "Do!");
        assert_eq!(from.as_deref(), Some("TasKy"));
        assert_eq!(smos.len(), 2);
        assert!(matches!(&smos[0], Smo::Split { table, first, second: None }
            if table == "Task" && first.table == "Todo"));
        assert!(matches!(&smos[1], Smo::DropColumn { table, column, .. }
            if table == "Todo" && column == "prio"));
    }

    #[test]
    fn parses_the_papers_tasky2_script() {
        // Figure 1, right side.
        let script = parse_script(
            "CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
             DECOMPOSE TABLE task INTO task(task,prio), author(author) ON FOREIGN KEY author; \
             RENAME COLUMN author IN author TO name;",
        )
        .unwrap();
        let Statement::CreateSchemaVersion { smos, .. } = &script.statements[0] else {
            panic!("wrong statement kind");
        };
        assert!(
            matches!(&smos[0], Smo::Decompose { on: DecomposeKind::Fk(fk), .. } if fk == "author")
        );
        assert!(matches!(&smos[1], Smo::RenameColumn { table, column, to }
            if table == "author" && column == "author" && to == "name"));
    }

    #[test]
    fn parses_materialize_variants() {
        let s = parse_script("MATERIALIZE 'TasKy2';").unwrap();
        assert_eq!(
            s.statements[0],
            Statement::Materialize {
                targets: vec!["TasKy2".into()]
            }
        );
        let s = parse_script("MATERIALIZE 'TasKy2.task', 'TasKy2.author';").unwrap();
        assert_eq!(
            s.statements[0],
            Statement::Materialize {
                targets: vec!["TasKy2.task".into(), "TasKy2.author".into()]
            }
        );
    }

    #[test]
    fn parses_multiple_statements() {
        let s = parse_script(
            "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b); \
             CREATE SCHEMA VERSION V2 FROM V1 WITH ADD COLUMN c AS a + b INTO T; \
             DROP SCHEMA VERSION V1; \
             MATERIALIZE 'V2';",
        )
        .unwrap();
        assert_eq!(s.statements.len(), 4);
    }

    #[test]
    fn parses_all_smo_kinds() {
        let script = parse_script(
            "CREATE SCHEMA VERSION V2 FROM V1 WITH \
             CREATE TABLE N(x, y); \
             DROP TABLE Old; \
             RENAME TABLE A INTO B; \
             RENAME COLUMN c IN B TO d; \
             ADD COLUMN e AS d * 2 INTO B; \
             DROP COLUMN e FROM B DEFAULT 0; \
             DECOMPOSE TABLE R INTO S(a), T(b) ON PK; \
             DECOMPOSE TABLE R2 INTO S2(a), T2(b) ON a = b; \
             OUTER JOIN TABLE S, T INTO R ON PK; \
             JOIN TABLE S2, T2 INTO R2 ON FK fk; \
             SPLIT TABLE X INTO Y WITH a < 5, Z WITH a >= 5; \
             MERGE TABLE Y (a < 5), Z (a >= 5) INTO X;",
        )
        .unwrap();
        let Statement::CreateSchemaVersion { smos, .. } = &script.statements[0] else {
            panic!()
        };
        assert_eq!(smos.len(), 12);
        assert!(matches!(smos[8], Smo::Join { outer: true, .. }));
        assert!(matches!(
            smos[9],
            Smo::Join {
                outer: false,
                on: JoinKind::Fk(_),
                ..
            }
        ));
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("a + b * 2 = 10 AND NOT c < 5 OR d IS NULL").unwrap();
        let text = e.to_string();
        assert_eq!(text, "(((a + (b * 2)) = 10 AND NOT (c < 5)) OR d IS NULL)");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_script("HELLO WORLD").is_err());
        assert!(parse_script("CREATE SCHEMA VERSION V WITH FROB TABLE x;").is_err());
        assert!(parse_expr("a +").is_err());
    }

    #[test]
    fn function_calls_in_expressions() {
        let e = parse_expr("concat(first, ' ', last)").unwrap();
        assert_eq!(e.to_string(), "concat(first, ' ', last)");
    }
}
