//! ADD COLUMN / DROP COLUMN (Appendix B.1, Rules 126–132).
//!
//! `ADD COLUMN b AS f(…) INTO R` computes values for the new column with
//! `f` when data flows forward; the source-side auxiliary `B(p, b)` stores
//! values written through the *new* version so they survive a round trip
//! while the data is materialized at the source (repeatable reads,
//! Rule 131). `DROP COLUMN` is the exact inverse: the dropped values park in
//! a target-side auxiliary, and `f` provides defaults for tuples that only
//! ever existed in the new version.

use crate::error::BidelError;
use crate::semantics::{
    aux_rel, key_atom, pvar, src_rel, table_atom, tgt_rel, user_expr, DerivedSmo, TableRef,
};
use crate::Result;
use inverda_datalog::ast::{Atom, Literal, Rule, RuleSet, Term};
use inverda_storage::Expr;

/// Build ADD COLUMN semantics.
pub fn add_column(
    table: &str,
    column: &str,
    function: &Expr,
    columns: &[String],
) -> Result<DerivedSmo> {
    if columns.contains(&column.to_string()) {
        return Err(BidelError::semantics(format!(
            "ADD COLUMN: column '{column}' already exists in '{table}'"
        )));
    }
    for c in function.referenced_columns() {
        if !columns.contains(&c) {
            return Err(BidelError::semantics(format!(
                "ADD COLUMN: function references unknown column '{c}'"
            )));
        }
    }
    let src = TableRef::new(table, src_rel(table), columns.to_vec());
    let mut tgt_cols = columns.to_vec();
    tgt_cols.push(column.to_string());
    let tgt = TableRef::new(table, tgt_rel(table), tgt_cols.clone());
    let aux_b = TableRef::new(
        "B",
        aux_rel(&format!("{table}.{column}")),
        vec![column.to_string()],
    );

    let p = "p";
    let bvar = pvar(column);
    let f = user_expr(function);

    // γ_tgt — Rules 126/127.
    let to_tgt = RuleSet::new(vec![
        Rule::new(
            table_atom(&tgt.rel, p, &tgt_cols),
            vec![
                Literal::Pos(table_atom(&src.rel, p, columns)),
                Literal::Neg(key_atom(&aux_b.rel, p, 1)),
                Literal::Assign {
                    var: bvar.clone(),
                    expr: f.clone(),
                },
            ],
        ),
        Rule::new(
            table_atom(&tgt.rel, p, &tgt_cols),
            vec![
                Literal::Pos(table_atom(&src.rel, p, columns)),
                Literal::Pos(Atom::new(&aux_b.rel, vec![Term::var(p), Term::var(&bvar)])),
            ],
        ),
    ]);

    // γ_src — Rules 128/129.
    let mut tgt_terms_key_only_payload = vec![Term::var(p)];
    tgt_terms_key_only_payload.extend(std::iter::repeat_n(Term::Anon, columns.len()));
    tgt_terms_key_only_payload.push(Term::var(&bvar));
    let to_src = RuleSet::new(vec![
        Rule::new(
            table_atom(&src.rel, p, columns),
            vec![Literal::Pos(Atom::new(&tgt.rel, {
                let mut t = table_atom(&src.rel, p, columns).terms;
                t.push(Term::Anon);
                t
            }))],
        ),
        Rule::new(
            Atom::new(&aux_b.rel, vec![Term::var(p), Term::var(&bvar)]),
            vec![Literal::Pos(Atom::new(
                &tgt.rel,
                tgt_terms_key_only_payload,
            ))],
        ),
    ]);

    Ok(DerivedSmo {
        kind: "ADD COLUMN",
        src_data: vec![src],
        tgt_data: vec![tgt],
        src_aux: vec![aux_b],
        tgt_aux: vec![],
        shared_aux: vec![],
        to_tgt,
        to_src,
        generators: vec![],
        observe_hints: vec![],
        payload_keyed_aux: vec![],
        moves_data: true,
    })
}

/// Build DROP COLUMN semantics — structurally the inverse of ADD COLUMN,
/// but derived directly so the dropped column may sit at any position.
pub fn drop_column(
    table: &str,
    column: &str,
    default: &Expr,
    columns: &[String],
) -> Result<DerivedSmo> {
    let idx = columns.iter().position(|c| c == column).ok_or_else(|| {
        BidelError::semantics(format!(
            "DROP COLUMN: column '{column}' does not exist in '{table}'"
        ))
    })?;
    let kept: Vec<String> = columns.iter().filter(|c| *c != column).cloned().collect();
    if kept.is_empty() {
        return Err(BidelError::semantics(
            "DROP COLUMN: cannot drop the only column of a table",
        ));
    }
    for c in default.referenced_columns() {
        if !kept.contains(&c) {
            return Err(BidelError::semantics(format!(
                "DROP COLUMN: default function references unavailable column '{c}'"
            )));
        }
    }
    let src = TableRef::new(table, src_rel(table), columns.to_vec());
    let tgt = TableRef::new(table, tgt_rel(table), kept.clone());
    let aux_b = TableRef::new(
        "B",
        aux_rel(&format!("{table}.{column}")),
        vec![column.to_string()],
    );

    let p = "p";
    let bvar = pvar(column);
    let f = user_expr(default);

    // γ_tgt: project away the column; keep its values in the aux.
    let mut drop_terms = vec![Term::var(p)];
    for (i, c) in columns.iter().enumerate() {
        if i == idx {
            drop_terms.push(Term::Anon);
        } else {
            drop_terms.push(Term::var(pvar(c)));
        }
    }
    let mut keep_value_terms = vec![Term::var(p)];
    for (i, c) in columns.iter().enumerate() {
        if i == idx {
            keep_value_terms.push(Term::var(&bvar));
        } else {
            keep_value_terms.push(Term::var(pvar(c)));
        }
    }
    let to_tgt = RuleSet::new(vec![
        Rule::new(
            table_atom(&tgt.rel, p, &kept),
            vec![Literal::Pos(Atom::new(&src.rel, drop_terms))],
        ),
        Rule::new(
            Atom::new(&aux_b.rel, vec![Term::var(p), Term::var(&bvar)]),
            vec![Literal::Pos(Atom::new(&src.rel, keep_value_terms.clone()))],
        ),
    ]);

    // γ_src: re-insert the column from the aux, or from the default.
    let head = Atom::new(&src.rel, keep_value_terms);
    let to_src = RuleSet::new(vec![
        Rule::new(
            head.clone(),
            vec![
                Literal::Pos(table_atom(&tgt.rel, p, &kept)),
                Literal::Pos(Atom::new(&aux_b.rel, vec![Term::var(p), Term::var(&bvar)])),
            ],
        ),
        Rule::new(
            head,
            vec![
                Literal::Pos(table_atom(&tgt.rel, p, &kept)),
                Literal::Neg(key_atom(&aux_b.rel, p, 1)),
                Literal::Assign {
                    var: bvar.clone(),
                    expr: f,
                },
            ],
        ),
    ]);

    Ok(DerivedSmo {
        kind: "DROP COLUMN",
        src_data: vec![src],
        tgt_data: vec![tgt],
        src_aux: vec![],
        tgt_aux: vec![aux_b],
        shared_aux: vec![],
        to_tgt,
        to_src,
        generators: vec![],
        observe_hints: vec![],
        payload_keyed_aux: vec![],
        moves_data: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_column_shape() {
        let d = add_column(
            "T",
            "c",
            &Expr::col("a").eq(Expr::col("a")), // f(a)
            &["a".into(), "b".into()],
        )
        .unwrap();
        assert_eq!(d.tgt_data[0].columns, vec!["a", "b", "c"]);
        assert_eq!(d.src_aux.len(), 1);
        assert!(d.tgt_aux.is_empty());
        assert_eq!(d.to_tgt.len(), 2);
        assert_eq!(d.to_src.len(), 2);
        // Rule 126 shape: head has the assign for the new column.
        let r = &d.to_tgt.rules[0];
        assert!(r.body.iter().any(|l| matches!(l, Literal::Assign { .. })));
    }

    #[test]
    fn add_column_rejects_duplicates_and_unknown_refs() {
        assert!(add_column("T", "a", &Expr::lit(1), &["a".into()]).is_err());
        assert!(add_column("T", "b", &Expr::col("zz"), &["a".into()]).is_err());
    }

    #[test]
    fn drop_column_mid_position() {
        let d = drop_column(
            "T",
            "b",
            &Expr::lit(1),
            &["a".into(), "b".into(), "c".into()],
        )
        .unwrap();
        assert_eq!(d.tgt_data[0].columns, vec!["a", "c"]);
        assert_eq!(d.tgt_aux.len(), 1);
        assert!(d.src_aux.is_empty());
        // γ_src head must restore the original column order (a, b, c).
        let head = &d.to_src.rules[0].head;
        assert_eq!(head.terms.len(), 4);
        assert_eq!(head.terms[2], Term::var("c_b"));
    }

    #[test]
    fn drop_column_default_is_used_for_new_tuples() {
        // The Do! example: DROP COLUMN prio FROM Todo DEFAULT 1.
        let d = drop_column(
            "Todo",
            "prio",
            &Expr::lit(1),
            &["author".into(), "task".into(), "prio".into()],
        )
        .unwrap();
        let fallback = &d.to_src.rules[1];
        assert!(fallback
            .body
            .iter()
            .any(|l| matches!(l, Literal::Assign { var, .. } if var == "c_prio")));
    }

    #[test]
    fn drop_column_errors() {
        assert!(drop_column("T", "zz", &Expr::lit(1), &["a".into()]).is_err());
        assert!(drop_column("T", "a", &Expr::lit(1), &["a".into()]).is_err());
        assert!(
            drop_column("T", "a", &Expr::col("a"), &["a".into(), "b".into()]).is_err(),
            "default may not reference the dropped column"
        );
    }
}
