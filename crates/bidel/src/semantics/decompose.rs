//! DECOMPOSE ON PK / FK / condition (Appendix B.2, B.3, B.4).
//!
//! * **ON PK** (B.2): both targets keep the source key; gaps from the
//!   inverse outer join are filled with ω (NULL).
//! * **ON FOREIGN KEY fk** (B.3): the second target's rows get generated
//!   identifiers (deduplicated by payload — "we eliminate all duplicates in
//!   the new address table"); the first target gains the foreign-key column.
//!   The source-side auxiliary `ID_R(p, t)` stores the assignment so reads
//!   are repeatable. De-staged relative to the paper, see the module docs of
//!   [`crate::semantics`].
//! * **ON condition** (B.4): both targets get fresh identifiers; the shared
//!   `ID(r, s, t)` table relates them to the source rows, `R⁻` remembers
//!   deleted source rows whose targets still condition-match.

use crate::ast::TableSig;
use crate::error::BidelError;
use crate::semantics::{
    all_null, aux_rel, gen_name, key_atom, not_all_null, pvar, src_rel, tgt_rel, user_expr,
    DerivedSmo, ObserveHint, SharedAux, TableRef,
};
use crate::Result;
use inverda_datalog::ast::{Atom, Literal, Rule, RuleSet, Term};
use inverda_storage::{Expr, Value};

/// Terms of an atom over the full source table, with all payload vars bound.
fn full_terms(key: &str, columns: &[String]) -> Vec<Term> {
    let mut t = vec![Term::var(key)];
    t.extend(columns.iter().map(|c| Term::var(pvar(c))));
    t
}

/// Head terms reconstructing the source row: vars for available columns,
/// ω (NULL) for the missing side.
fn source_head(rel: &str, key: &str, columns: &[String], available: &[String]) -> Atom {
    let mut terms = vec![Term::var(key)];
    for c in columns {
        if available.contains(c) {
            terms.push(Term::var(pvar(c)));
        } else {
            terms.push(Term::Const(Value::Null));
        }
    }
    Atom::new(rel, terms)
}

// ---------------------------------------------------------------- ON PK

/// `DECOMPOSE TABLE R INTO S(A), T(B) ON PK` (Appendix B.2). Column overlap
/// between A and B is allowed; shared columns act as join constraints on
/// reconstruction.
pub fn decompose_pk(
    table: &str,
    first: &TableSig,
    second: &TableSig,
    columns: &[String],
) -> Result<DerivedSmo> {
    crate::semantics::require_cover(&first.columns, &second.columns, columns, "DECOMPOSE ON PK")?;
    if first.columns.is_empty() || second.columns.is_empty() {
        return Err(BidelError::semantics(
            "DECOMPOSE ON PK: targets must have at least one column",
        ));
    }
    let src = TableRef::new(table, src_rel(table), columns.to_vec());
    let s = TableRef::new(&first.name, tgt_rel(&first.name), first.columns.clone());
    let t = TableRef::new(&second.name, tgt_rel(&second.name), second.columns.clone());
    let p = "p";

    // γ_tgt — Rules 133/134 with explicit ω guards.
    let to_tgt = RuleSet::new(vec![
        Rule::new(
            Atom::new(&s.rel, full_terms(p, &s.columns)),
            vec![
                Literal::Pos(Atom::new(&src.rel, full_terms(p, columns))),
                Literal::Cond(not_all_null(&s.columns)),
            ],
        ),
        Rule::new(
            Atom::new(&t.rel, full_terms(p, &t.columns)),
            vec![
                Literal::Pos(Atom::new(&src.rel, full_terms(p, columns))),
                Literal::Cond(not_all_null(&t.columns)),
            ],
        ),
    ]);

    // γ_src — Rules 135–137.
    let to_src = RuleSet::new(vec![
        Rule::new(
            Atom::new(&src.rel, full_terms(p, columns)),
            vec![
                Literal::Pos(Atom::new(&s.rel, full_terms(p, &s.columns))),
                Literal::Pos(Atom::new(&t.rel, full_terms(p, &t.columns))),
            ],
        ),
        Rule::new(
            source_head(&src.rel, p, columns, &s.columns),
            vec![
                Literal::Pos(Atom::new(&s.rel, full_terms(p, &s.columns))),
                Literal::Neg(key_atom(&t.rel, p, t.columns.len())),
            ],
        ),
        Rule::new(
            source_head(&src.rel, p, columns, &t.columns),
            vec![
                Literal::Pos(Atom::new(&t.rel, full_terms(p, &t.columns))),
                Literal::Neg(key_atom(&s.rel, p, s.columns.len())),
            ],
        ),
    ]);

    Ok(DerivedSmo {
        kind: "DECOMPOSE",
        src_data: vec![src],
        tgt_data: vec![s, t],
        src_aux: vec![],
        tgt_aux: vec![],
        shared_aux: vec![],
        to_tgt,
        to_src,
        generators: vec![],
        observe_hints: vec![],
        payload_keyed_aux: vec![],
        moves_data: true,
    })
}

// ---------------------------------------------------------------- ON FK

/// `DECOMPOSE TABLE R INTO S(A), T(B) ON FOREIGN KEY fk` (Appendix B.3).
/// `S` receives the extra column `fk` referencing `T`'s generated key.
pub fn decompose_fk(
    table: &str,
    first: &TableSig,
    second: &TableSig,
    fk: &str,
    columns: &[String],
) -> Result<DerivedSmo> {
    crate::semantics::require_cover(&first.columns, &second.columns, columns, "DECOMPOSE ON FK")?;
    for c in &first.columns {
        if second.columns.contains(c) {
            return Err(BidelError::semantics(format!(
                "DECOMPOSE ON FK: column '{c}' may not occur in both targets"
            )));
        }
    }
    if first.columns.contains(&fk.to_string()) {
        return Err(BidelError::semantics(format!(
            "DECOMPOSE ON FK: foreign key column '{fk}' collides with a column of '{}'",
            first.name
        )));
    }
    if second.columns.is_empty() {
        return Err(BidelError::semantics(
            "DECOMPOSE ON FK: the referenced target needs at least one column",
        ));
    }
    let a = first.columns.clone();
    let b = second.columns.clone();
    let src = TableRef::new(table, src_rel(table), columns.to_vec());
    let mut s_cols = a.clone();
    s_cols.push(fk.to_string());
    let s = TableRef::new(&first.name, tgt_rel(&first.name), s_cols);
    let t = TableRef::new(&second.name, tgt_rel(&second.name), b.clone());
    // `ID_R(p, t, B)` — the assignment memo *including the payload the id
    // was generated for* (synthetic column names: positions carry the
    // meaning). An entry only ever certifies "row p's payload B maps to t";
    // carrying B makes the γ_tgt joins self-guarding: when a write replaces
    // row p's payload, the stale pairing simply stops matching and the
    // skolem rules re-mint (the registry reproduces the id whenever the
    // payload did not actually change). Without the payload, a stale
    // pairing pinned the old payload's id onto the new payload and collided
    // with the old payload's surviving twin — the historical twin-separated
    // KeyConflict.
    let mut id_cols = vec!["t".to_string()];
    id_cols.extend((0..b.len()).map(|i| format!("b{i}")));
    let id_aux = TableRef::new("IDR", aux_rel(&format!("ID_{table}")), id_cols);
    let generator = gen_name(&format!("{table}.{}", second.name));
    let p = "p";
    let tv = "t"; // the generated identifier variable

    // Atom helpers.
    let r_full = || Atom::new(&src.rel, full_terms(p, columns));
    let b_vars: Vec<Term> = b.iter().map(|c| Term::var(pvar(c))).collect();
    let id_atom = |t_term: Term| {
        let mut terms = vec![Term::var(p), t_term];
        terms.extend(b_vars.iter().cloned());
        Atom::new(&id_aux.rel, terms)
    };
    // S head: key p, A columns, then fk.
    let s_head = |fk_term: Term| {
        let mut terms = vec![Term::var(p)];
        terms.extend(a.iter().map(|c| Term::var(pvar(c))));
        terms.push(fk_term);
        Atom::new(&s.rel, terms)
    };
    let t_head = || {
        let mut terms = vec![Term::var(tv)];
        terms.extend(b_vars.iter().cloned());
        Atom::new(&t.rel, terms)
    };
    // ¬S(_, …, fk = t): S pattern keyed anywhere with the fk value.
    let s_fk_pattern = |t_term: Term| {
        let mut terms = vec![Term::Anon];
        terms.extend(std::iter::repeat_n(Term::Anon, a.len()));
        terms.push(t_term);
        Atom::new(&s.rel, terms)
    };
    let skolem = || Literal::Skolem {
        var: tv.into(),
        generator: generator.clone(),
        args: b.iter().map(|c| Term::var(pvar(c))).collect(),
    };

    // γ_tgt (de-staged B.3; Rules 141–146).
    let to_tgt = RuleSet::new(vec![
        Rule::new(
            t_head(),
            vec![
                Literal::Pos(r_full()),
                Literal::Pos(id_atom(Term::var(tv))),
                Literal::Cond(Expr::IsNull(Box::new(Expr::col(tv))).negate()),
            ],
        ),
        Rule::new(
            t_head(),
            vec![
                Literal::Pos(r_full()),
                Literal::Neg(id_atom(Term::Anon)),
                Literal::Cond(not_all_null(&b)),
                skolem(),
            ],
        ),
        Rule::new(
            s_head(Term::var(tv)),
            vec![Literal::Pos(r_full()), Literal::Pos(id_atom(Term::var(tv)))],
        ),
        Rule::new(
            s_head(Term::var(tv)),
            vec![
                Literal::Pos(r_full()),
                Literal::Neg(id_atom(Term::Anon)),
                Literal::Cond(not_all_null(&b)),
                skolem(),
            ],
        ),
        Rule::new(
            s_head(Term::Const(Value::Null)),
            vec![
                Literal::Pos(r_full()),
                Literal::Neg(id_atom(Term::Anon)),
                Literal::Cond(all_null(&b)),
            ],
        ),
    ]);

    // γ_src — Rules 147–152.
    let s_full = || {
        let mut terms = vec![Term::var(p)];
        terms.extend(a.iter().map(|c| Term::var(pvar(c))));
        terms.push(Term::var(tv));
        Atom::new(&s.rel, terms)
    };
    let to_src = RuleSet::new(vec![
        Rule::new(
            Atom::new(&src.rel, full_terms(p, columns)),
            vec![Literal::Pos(s_full()), Literal::Pos(t_head())],
        ),
        Rule::new(
            source_head(&src.rel, p, columns, &a),
            vec![Literal::Pos({
                let mut terms = vec![Term::var(p)];
                terms.extend(a.iter().map(|c| Term::var(pvar(c))));
                terms.push(Term::Const(Value::Null));
                Atom::new(&s.rel, terms)
            })],
        ),
        Rule::new(
            {
                // Orphan T rows surface keyed by their own id (Rule 149).
                let mut terms = vec![Term::var(tv)];
                for c in columns {
                    if b.contains(c) {
                        terms.push(Term::var(pvar(c)));
                    } else {
                        terms.push(Term::Const(Value::Null));
                    }
                }
                Atom::new(&src.rel, terms)
            },
            vec![
                Literal::Pos(t_head()),
                Literal::Neg(s_fk_pattern(Term::var(tv))),
            ],
        ),
        // Rule 150: the assignment memo records (row, id, payload) — the
        // payload join through T is what lets γ_tgt reject stale pairings.
        Rule::new(
            id_atom(Term::var(tv)),
            vec![Literal::Pos(s_full()), Literal::Pos(t_head())],
        ),
        // Rule 151: a row with an ω fk has no referenced payload — record ω
        // across the payload columns too.
        Rule::new(
            {
                let mut terms = vec![Term::var(p), Term::Const(Value::Null)];
                terms.extend(std::iter::repeat_n(Term::Const(Value::Null), b.len()));
                Atom::new(&id_aux.rel, terms)
            },
            vec![Literal::Pos({
                let mut terms = vec![Term::var(p)];
                terms.extend(std::iter::repeat_n(Term::Anon, a.len()));
                terms.push(Term::Const(Value::Null));
                Atom::new(&s.rel, terms)
            })],
        ),
        // Rule 152: orphan T rows surface keyed by their own id, with their
        // own payload as the recorded assignment.
        Rule::new(
            {
                let mut terms = vec![Term::var(tv), Term::var(tv)];
                terms.extend(b_vars.iter().cloned());
                Atom::new(&id_aux.rel, terms)
            },
            vec![
                Literal::Pos(t_head()),
                Literal::Neg(s_fk_pattern(Term::var(tv))),
            ],
        ),
    ]);

    Ok(DerivedSmo {
        kind: "DECOMPOSE",
        src_data: vec![src],
        tgt_data: vec![s, t.clone()],
        // `ID_R(p, t)` memoizes `t = idT(payload(p))` — payload-derived, so
        // updates of row `p` must purge it (see `DerivedSmo` docs); the
        // skolem registry re-mints the same id for unchanged payloads.
        payload_keyed_aux: vec![id_aux.rel.clone()],
        src_aux: vec![id_aux],
        tgt_aux: vec![],
        shared_aux: vec![],
        to_tgt,
        to_src,
        generators: vec![generator.clone()],
        observe_hints: vec![ObserveHint {
            generator,
            relation: t.rel,
        }],
        moves_data: true,
    })
}

// ---------------------------------------------------------------- ON COND

/// `DECOMPOSE TABLE R INTO S(A), T(B) ON c(A,B)` (Appendix B.4). Both
/// targets get fresh identifiers; the shared `ID` table relates them.
pub fn decompose_cond(
    table: &str,
    first: &TableSig,
    second: &TableSig,
    condition: &Expr,
    columns: &[String],
) -> Result<DerivedSmo> {
    crate::semantics::require_cover(
        &first.columns,
        &second.columns,
        columns,
        "DECOMPOSE ON cond",
    )?;
    for c in &first.columns {
        if second.columns.contains(c) {
            return Err(BidelError::semantics(format!(
                "DECOMPOSE ON cond: column '{c}' may not occur in both targets"
            )));
        }
    }
    let a = first.columns.clone();
    let b = second.columns.clone();
    for c in condition.referenced_columns() {
        if !columns.contains(&c) {
            return Err(BidelError::semantics(format!(
                "DECOMPOSE ON cond: condition references unknown column '{c}'"
            )));
        }
    }
    let cond = user_expr(condition);
    let src = TableRef::new(table, src_rel(table), columns.to_vec());
    let s = TableRef::new(&first.name, tgt_rel(&first.name), a.clone());
    let t = TableRef::new(&second.name, tgt_rel(&second.name), b.clone());
    let id = TableRef::new(
        "ID",
        aux_rel(&format!("ID_{table}")),
        vec!["s".to_string(), "t".to_string()],
    );
    let id_old = id.rel.clone();
    let id_new = format!("{}@new", id.rel);
    let r_minus = TableRef::new(
        "Rminus",
        aux_rel(&format!("{table}-")),
        vec!["t".to_string()],
    );
    let gen_s = gen_name(&format!("{table}.{}", first.name));
    let gen_t = gen_name(&format!("{table}.{}", second.name));
    let gen_r = gen_name(&format!("{table}.self"));

    let (rv, sv, tv) = ("r", "s", "t");
    let r_full = || Atom::new(&src.rel, full_terms(rv, columns));
    let s_atom = |key: &str| Atom::new(&s.rel, full_terms(key, &a));
    let t_atom = |key: &str| Atom::new(&t.rel, full_terms(key, &b));
    let sn_atom = |key: &str| Atom::new("Sn", full_terms(key, &a));
    let tn_atom = |key: &str| Atom::new("Tn", full_terms(key, &b));
    let id_o = |r: Term, s: Term, t: Term| Atom::new(&id_old, vec![r, s, t]);
    let id_n = |r: Term, s: Term, t: Term| Atom::new(&id_new, vec![r, s, t]);
    let skolem = |var: &str, generator: &str, cols: &[String]| Literal::Skolem {
        var: var.into(),
        generator: generator.into(),
        args: cols.iter().map(|c| Term::var(pvar(c))).collect(),
    };

    // γ_tgt — Rules 157–164 with ω-guarded ID derivation.
    let mut to_tgt = vec![
        // Sn.
        Rule::new(
            sn_atom(sv),
            vec![
                Literal::Pos(r_full()),
                Literal::Pos(id_o(Term::var(rv), Term::var(sv), Term::Anon)),
            ],
        ),
        Rule::new(
            sn_atom(sv),
            vec![
                Literal::Pos(r_full()),
                Literal::Neg(id_o(Term::var(rv), Term::Anon, Term::Anon)),
                Literal::Cond(not_all_null(&a)),
                skolem(sv, &gen_s, &a),
            ],
        ),
        Rule::new(
            sn_atom(rv),
            vec![
                Literal::Pos(r_full()),
                Literal::Neg(id_o(Term::var(rv), Term::Anon, Term::Anon)),
                Literal::Cond(all_null(&a)),
            ],
        ),
        // Tn.
        Rule::new(
            tn_atom(tv),
            vec![
                Literal::Pos(r_full()),
                Literal::Pos(id_o(Term::var(rv), Term::Anon, Term::var(tv))),
            ],
        ),
        Rule::new(
            tn_atom(tv),
            vec![
                Literal::Pos(r_full()),
                Literal::Neg(id_o(Term::var(rv), Term::Anon, Term::Anon)),
                Literal::Cond(not_all_null(&b)),
                skolem(tv, &gen_t, &b),
            ],
        ),
        Rule::new(
            tn_atom(rv),
            vec![
                Literal::Pos(r_full()),
                Literal::Neg(id_o(Term::var(rv), Term::Anon, Term::Anon)),
                Literal::Cond(all_null(&b)),
            ],
        ),
        // ID (rule 163, split by ω cases).
        Rule::new(
            id_n(Term::var(rv), Term::var(sv), Term::var(tv)),
            vec![
                Literal::Pos(r_full()),
                Literal::Cond(not_all_null(&a)),
                Literal::Cond(not_all_null(&b)),
                Literal::Pos(sn_atom(sv)),
                Literal::Pos(tn_atom(tv)),
            ],
        ),
        Rule::new(
            id_n(Term::var(rv), Term::var(rv), Term::var(tv)),
            vec![
                Literal::Pos(r_full()),
                Literal::Cond(all_null(&a)),
                Literal::Cond(not_all_null(&b)),
                Literal::Pos(tn_atom(tv)),
            ],
        ),
        Rule::new(
            id_n(Term::var(rv), Term::var(sv), Term::var(rv)),
            vec![
                Literal::Pos(r_full()),
                Literal::Cond(not_all_null(&a)),
                Literal::Cond(all_null(&b)),
                Literal::Pos(sn_atom(sv)),
            ],
        ),
        // R⁻ (rule 164).
        Rule::new(
            Atom::new(&r_minus.rel, vec![Term::var(sv), Term::var(tv)]),
            vec![
                Literal::Pos(sn_atom(sv)),
                Literal::Pos(tn_atom(tv)),
                Literal::Cond(cond.clone()),
                Literal::Neg(Atom::new(&src.rel, {
                    let mut terms = vec![Term::Anon];
                    terms.extend(columns.iter().map(|c| Term::var(pvar(c))));
                    terms
                })),
            ],
        ),
        // Copies to the canonical target names.
        Rule::new(s_atom(sv), vec![Literal::Pos(sn_atom(sv))]),
        Rule::new(t_atom(tv), vec![Literal::Pos(tn_atom(tv))]),
    ];

    // γ_src — Rules 165–171 (registry replaces unconditional id retention).
    let to_src = vec![
        Rule::new(
            Atom::new("Ro", full_terms(rv, columns)),
            vec![
                Literal::Pos(id_o(Term::var(rv), Term::var(sv), Term::var(tv))),
                Literal::Pos(s_atom(sv)),
                Literal::Pos(t_atom(tv)),
            ],
        ),
        Rule::new(
            Atom::new("Ro", full_terms(rv, columns)),
            vec![
                Literal::Pos(s_atom(sv)),
                Literal::Pos(t_atom(tv)),
                Literal::Cond(cond.clone()),
                Literal::Neg(Atom::new(&r_minus.rel, vec![Term::var(sv), Term::var(tv)])),
                Literal::Neg(id_o(Term::Anon, Term::var(sv), Term::var(tv))),
                skolem(rv, &gen_r, columns),
            ],
        ),
        Rule::new(
            id_n(Term::var(rv), Term::var(sv), Term::var(tv)),
            vec![
                Literal::Pos(id_o(Term::var(rv), Term::var(sv), Term::var(tv))),
                Literal::Pos(key_atom(&s.rel, sv, a.len())),
                Literal::Pos(key_atom(&t.rel, tv, b.len())),
            ],
        ),
        Rule::new(
            id_n(Term::var(rv), Term::var(sv), Term::var(tv)),
            vec![
                Literal::Pos(s_atom(sv)),
                Literal::Pos(t_atom(tv)),
                Literal::Cond(cond.clone()),
                Literal::Neg(Atom::new(&r_minus.rel, vec![Term::var(sv), Term::var(tv)])),
                Literal::Neg(id_o(Term::Anon, Term::var(sv), Term::var(tv))),
                skolem(rv, &gen_r, columns),
            ],
        ),
        Rule::new(
            Atom::new(&src.rel, full_terms(rv, columns)),
            vec![Literal::Pos(Atom::new("Ro", full_terms(rv, columns)))],
        ),
        Rule::new(
            source_head(&src.rel, sv, columns, &a),
            vec![
                Literal::Pos(s_atom(sv)),
                Literal::Neg(id_n(Term::Anon, Term::var(sv), Term::Anon)),
            ],
        ),
        Rule::new(
            source_head(&src.rel, tv, columns, &b),
            vec![
                Literal::Pos(t_atom(tv)),
                Literal::Neg(id_n(Term::Anon, Term::Anon, Term::var(tv))),
            ],
        ),
    ];

    // Order: R⁻ rule must see Sn/Tn fully derived — it already follows them.
    let _ = &mut to_tgt;

    Ok(DerivedSmo {
        kind: "DECOMPOSE",
        src_data: vec![src.clone()],
        tgt_data: vec![s.clone(), t.clone()],
        src_aux: vec![],
        tgt_aux: vec![r_minus],
        shared_aux: vec![SharedAux {
            table: id,
            old_name: id_old,
            new_name: id_new,
        }],
        to_tgt: RuleSet::new(to_tgt),
        to_src: RuleSet::new(to_src),
        generators: vec![gen_s.clone(), gen_t.clone(), gen_r.clone()],
        observe_hints: vec![
            ObserveHint {
                generator: gen_s,
                relation: s.rel,
            },
            ObserveHint {
                generator: gen_t,
                relation: t.rel,
            },
            ObserveHint {
                generator: gen_r,
                relation: src.rel,
            },
        ],
        // The shared `ID(r, s, t)` relates *identities*, not payloads: a
        // source-row update keeps the same target ids (with new payloads
        // flowing through the γ joins), so no update purge is needed.
        payload_keyed_aux: vec![],
        moves_data: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(name: &str, cols: &[&str]) -> TableSig {
        TableSig {
            name: name.into(),
            columns: cols.iter().map(|c| c.to_string()).collect(),
        }
    }

    #[test]
    fn pk_decompose_shape() {
        let d = decompose_pk(
            "R",
            &sig("S", &["a"]),
            &sig("T", &["b"]),
            &["a".into(), "b".into()],
        )
        .unwrap();
        assert_eq!(d.to_tgt.len(), 2);
        assert_eq!(d.to_src.len(), 3);
        assert!(d.src_aux.is_empty() && d.tgt_aux.is_empty());
        // ω reconstruction: missing T side yields NULL for b.
        let rule = &d.to_src.rules[1];
        assert!(rule.head.terms.contains(&Term::Const(Value::Null)));
    }

    #[test]
    fn pk_decompose_with_overlap() {
        let d = decompose_pk(
            "R",
            &sig("S", &["a", "shared"]),
            &sig("T", &["shared", "b"]),
            &["a".into(), "shared".into(), "b".into()],
        )
        .unwrap();
        // Shared column appears as the same variable in both body atoms of
        // the reconstruction rule -> acts as a join constraint.
        let rule = &d.to_src.rules[0];
        let text = rule.to_string();
        assert!(text.matches("c_shared").count() >= 3, "{text}");
    }

    #[test]
    fn fk_decompose_tasky2_shape() {
        // The paper's TasKy2 evolution.
        let d = decompose_fk(
            "Task",
            &sig("Task", &["task", "prio"]),
            &sig("Author", &["author"]),
            "author",
            &["author".into(), "task".into(), "prio".into()],
        )
        .unwrap();
        assert_eq!(d.tgt_data[0].columns, vec!["task", "prio", "author"]);
        assert_eq!(d.tgt_data[1].columns, vec!["author"]);
        assert_eq!(d.src_aux.len(), 1); // ID_R
        assert_eq!(d.generators.len(), 1);
        assert_eq!(d.observe_hints.len(), 1);
        assert_eq!(d.to_tgt.len(), 5);
        assert_eq!(d.to_src.len(), 6);
        // De-staged: γ_tgt must not reference its own heads.
        let heads = d.to_tgt.head_relations();
        for r in &d.to_tgt.rules {
            for rel in r.body_relations() {
                assert!(!heads.contains(&rel.to_string()), "staged rule: {r}");
            }
        }
    }

    #[test]
    fn fk_decompose_rejects_bad_columns() {
        assert!(decompose_fk(
            "R",
            &sig("S", &["a"]),
            &sig("T", &["a"]),
            "fk",
            &["a".into()],
        )
        .is_err());
        assert!(decompose_fk(
            "R",
            &sig("S", &["a"]),
            &sig("T", &["b"]),
            "a",
            &["a".into(), "b".into()],
        )
        .is_err());
    }

    #[test]
    fn cond_decompose_has_shared_id() {
        let d = decompose_cond(
            "R",
            &sig("S", &["a"]),
            &sig("T", &["b"]),
            &Expr::col("a").eq(Expr::col("b")),
            &["a".into(), "b".into()],
        )
        .unwrap();
        assert_eq!(d.shared_aux.len(), 1);
        assert_eq!(d.shared_aux[0].old_name, "aux#ID_R");
        assert_eq!(d.shared_aux[0].new_name, "aux#ID_R@new");
        assert_eq!(d.tgt_aux.len(), 1); // R⁻
        assert_eq!(d.generators.len(), 3);
        // γ_tgt is staged (copies reference Sn/Tn) — expected.
        let heads = d.to_tgt.head_relations();
        assert!(heads.contains(&"Sn".to_string()));
        assert!(heads.contains(&"tgt#S".to_string()));
    }
}
