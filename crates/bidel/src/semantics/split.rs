//! SPLIT (Section 4, Rules 12–25) and its inverse MERGE.
//!
//! `SPLIT TABLE T INTO R WITH cR [, S WITH cS]` horizontally partitions T.
//! The auxiliary tables cover every way the target side can diverge from a
//! plain partition (Section 4):
//!
//! * `T'` (target-side): source tuples matching neither condition;
//! * `R⁻`, `S⁻` (source-side): *lost twins* — a tuple satisfying both
//!   conditions appears in R and S; deleting one twin must not resurrect it
//!   from the other;
//! * `S⁺` (source-side): *separated twins* — twins updated to different
//!   values; T keeps the R twin (primus inter pares), `S⁺` the S twin;
//! * `R*`, `S*` (source-side): tuples written to R / S that violate the
//!   partition condition and must still live there.

use crate::ast::SplitArm;
use crate::error::BidelError;
use crate::semantics::{
    aux_rel, key_atom, pvars, src_rel, table_atom, tgt_rel, user_expr, DerivedSmo, TableRef,
};
use crate::Result;
use inverda_datalog::ast::{lists_ne, Atom, Literal, Rule, RuleSet, Term};

/// Build SPLIT semantics. `second` is the optional second partition arm.
pub fn split(
    table: &str,
    first: &SplitArm,
    second: Option<&SplitArm>,
    columns: &[String],
) -> Result<DerivedSmo> {
    build(
        TableRef::new(table, src_rel(table), columns.to_vec()),
        TableRef::new(&first.table, tgt_rel(&first.table), columns.to_vec()),
        user_expr(&first.condition),
        second.map(|s| {
            (
                TableRef::new(&s.table, tgt_rel(&s.table), columns.to_vec()),
                user_expr(&s.condition),
            )
        }),
        "SPLIT",
    )
}

/// Build MERGE semantics — the inverse of a two-arm SPLIT (Appendix B).
pub fn merge(
    first: &SplitArm,
    second: &SplitArm,
    into: &str,
    first_cols: &[String],
    second_cols: &[String],
) -> Result<DerivedSmo> {
    if first_cols != second_cols {
        return Err(BidelError::semantics(format!(
            "MERGE requires equal schemas: {}({}) vs {}({})",
            first.table,
            first_cols.join(", "),
            second.table,
            second_cols.join(", ")
        )));
    }
    let d = build(
        // Roles swapped: in the underlying SPLIT, `into` is the source and
        // the merge inputs are the targets — inversion swaps them back.
        TableRef::new(into, tgt_rel(into), first_cols.to_vec()),
        TableRef::new(&first.table, src_rel(&first.table), first_cols.to_vec()),
        user_expr(&first.condition),
        Some((
            TableRef::new(&second.table, src_rel(&second.table), second_cols.to_vec()),
            user_expr(&second.condition),
        )),
        "SPLIT",
    )?;
    Ok(d.inverted("MERGE"))
}

/// Shared builder. `t` plays the unsplit role, `r`/`s` the partitions;
/// conditions are already over payload variables.
fn build(
    t: TableRef,
    r: TableRef,
    c_r: inverda_storage::Expr,
    s_arm: Option<(TableRef, inverda_storage::Expr)>,
    kind: &'static str,
) -> Result<DerivedSmo> {
    let cols = t.columns.clone();
    if cols.is_empty() {
        return Err(BidelError::semantics(
            "SPLIT/MERGE of a zero-column table is not supported",
        ));
    }
    let arity = cols.len();
    let p = "p";
    let t_atom = || table_atom(&t.rel, p, &cols);
    let r_atom = || table_atom(&r.rel, p, &cols);

    // Auxiliary tables.
    let r_minus = TableRef::new(
        "Rminus",
        aux_rel(&format!("{}-", r.name)),
        Vec::<String>::new(),
    );
    let r_star = TableRef::new(
        "Rstar",
        aux_rel(&format!("{}*", r.name)),
        Vec::<String>::new(),
    );
    let t_prime = TableRef::new("Tprime", aux_rel(&format!("{}'", t.name)), cols.clone());

    let mut to_tgt = Vec::new();
    let mut to_src = Vec::new();
    let mut src_aux = vec![r_minus.clone(), r_star.clone()];
    let tgt_aux = vec![t_prime.clone()];

    match &s_arm {
        Some((s, c_s)) => {
            let s_atom = || table_atom(&s.rel, p, &cols);
            let s_plus = TableRef::new("Splus", aux_rel(&format!("{}+", s.name)), cols.clone());
            let s_minus = TableRef::new(
                "Sminus",
                aux_rel(&format!("{}-", s.name)),
                Vec::<String>::new(),
            );
            let s_star = TableRef::new(
                "Sstar",
                aux_rel(&format!("{}*", s.name)),
                Vec::<String>::new(),
            );

            // γ_tgt — Rules 12–17.
            to_tgt.push(Rule::new(
                r_atom(),
                vec![
                    Literal::Pos(t_atom()),
                    Literal::Cond(c_r.clone()),
                    Literal::Neg(Atom::vars(&r_minus.rel, &[p])),
                ],
            ));
            to_tgt.push(Rule::new(
                r_atom(),
                vec![
                    Literal::Pos(t_atom()),
                    Literal::Pos(Atom::vars(&r_star.rel, &[p])),
                ],
            ));
            to_tgt.push(Rule::new(
                s_atom(),
                vec![
                    Literal::Pos(t_atom()),
                    Literal::Cond(c_s.clone()),
                    Literal::Neg(Atom::vars(&s_minus.rel, &[p])),
                    Literal::Neg(key_atom(&s_plus.rel, p, arity)),
                ],
            ));
            to_tgt.push(Rule::new(
                s_atom(),
                vec![Literal::Pos(table_atom(&s_plus.rel, p, &cols))],
            ));
            to_tgt.push(Rule::new(
                s_atom(),
                vec![
                    Literal::Pos(t_atom()),
                    Literal::Pos(Atom::vars(&s_star.rel, &[p])),
                    Literal::Neg(key_atom(&s_plus.rel, p, arity)),
                ],
            ));
            to_tgt.push(Rule::new(
                table_atom(&t_prime.rel, p, &cols),
                vec![
                    Literal::Pos(t_atom()),
                    Literal::Cond(c_r.clone().negate()),
                    Literal::Cond(c_s.clone().negate()),
                    Literal::Neg(Atom::vars(&r_star.rel, &[p])),
                    Literal::Neg(Atom::vars(&s_star.rel, &[p])),
                ],
            ));

            // γ_src — Rules 18–25.
            to_src.push(Rule::new(t_atom(), vec![Literal::Pos(r_atom())]));
            to_src.push(Rule::new(
                t_atom(),
                vec![
                    Literal::Pos(s_atom()),
                    Literal::Neg(key_atom(&r.rel, p, arity)),
                ],
            ));
            to_src.push(Rule::new(
                t_atom(),
                vec![Literal::Pos(table_atom(&t_prime.rel, p, &cols))],
            ));
            to_src.push(Rule::new(
                Atom::vars(&r_minus.rel, &[p]),
                vec![
                    Literal::Pos(s_atom()),
                    Literal::Neg(key_atom(&r.rel, p, arity)),
                    Literal::Cond(c_r.clone()),
                ],
            ));
            to_src.push(Rule::new(
                Atom::vars(&r_star.rel, &[p]),
                vec![Literal::Pos(r_atom()), Literal::Cond(c_r.clone().negate())],
            ));
            // Separated twins: S's payload (fresh variables) differs from
            // R's payload (Rule 23).
            let primed: Vec<String> = cols.iter().map(|c| format!("c2_{c}")).collect();
            let mut s_terms = vec![Term::var(p)];
            s_terms.extend(primed.iter().map(|v| Term::var(v.clone())));
            let mut splus_head_terms = vec![Term::var(p)];
            splus_head_terms.extend(primed.iter().map(|v| Term::var(v.clone())));
            let payload_vars = pvars(&cols);
            let payload_refs: Vec<&str> = payload_vars.iter().map(String::as_str).collect();
            let primed_refs: Vec<&str> = primed.iter().map(String::as_str).collect();
            to_src.push(Rule::new(
                Atom::new(&s_plus.rel, splus_head_terms),
                vec![
                    Literal::Pos(Atom::new(&s.rel, s_terms)),
                    Literal::Pos(r_atom()),
                    Literal::Cond(lists_ne(&primed_refs, &payload_refs)),
                ],
            ));
            to_src.push(Rule::new(
                Atom::vars(&s_minus.rel, &[p]),
                vec![
                    Literal::Pos(r_atom()),
                    Literal::Neg(key_atom(&s.rel, p, arity)),
                    Literal::Cond(c_s.clone()),
                ],
            ));
            to_src.push(Rule::new(
                Atom::vars(&s_star.rel, &[p]),
                vec![Literal::Pos(s_atom()), Literal::Cond(c_s.clone().negate())],
            ));

            src_aux.extend([s_plus, s_minus, s_star]);
            Ok(DerivedSmo {
                kind,
                src_data: vec![t],
                tgt_data: vec![r, s.clone()],
                src_aux,
                tgt_aux,
                shared_aux: vec![],
                to_tgt: RuleSet::new(to_tgt),
                to_src: RuleSet::new(to_src),
                generators: vec![],
                observe_hints: vec![],
                payload_keyed_aux: vec![],
                moves_data: true,
            })
        }
        None => {
            // Single-arm split: R = σ_cR(T); everything else lives in T'.
            to_tgt.push(Rule::new(
                r_atom(),
                vec![
                    Literal::Pos(t_atom()),
                    Literal::Cond(c_r.clone()),
                    Literal::Neg(Atom::vars(&r_minus.rel, &[p])),
                ],
            ));
            to_tgt.push(Rule::new(
                r_atom(),
                vec![
                    Literal::Pos(t_atom()),
                    Literal::Pos(Atom::vars(&r_star.rel, &[p])),
                ],
            ));
            to_tgt.push(Rule::new(
                table_atom(&t_prime.rel, p, &cols),
                vec![
                    Literal::Pos(t_atom()),
                    Literal::Cond(c_r.clone().negate()),
                    Literal::Neg(Atom::vars(&r_star.rel, &[p])),
                ],
            ));
            to_src.push(Rule::new(t_atom(), vec![Literal::Pos(r_atom())]));
            to_src.push(Rule::new(
                t_atom(),
                vec![Literal::Pos(table_atom(&t_prime.rel, p, &cols))],
            ));
            to_src.push(Rule::new(
                Atom::vars(&r_star.rel, &[p]),
                vec![Literal::Pos(r_atom()), Literal::Cond(c_r.clone().negate())],
            ));
            // R⁻ has no producer in the single-arm case (no second twin to
            // lose): keep the table so deletes through R stay deletes.
            Ok(DerivedSmo {
                kind,
                src_data: vec![t],
                tgt_data: vec![r],
                src_aux,
                tgt_aux,
                shared_aux: vec![],
                to_tgt: RuleSet::new(to_tgt),
                to_src: RuleSet::new(to_src),
                generators: vec![],
                observe_hints: vec![],
                payload_keyed_aux: vec![],
                moves_data: true,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inverda_storage::Expr;

    fn tasky_split() -> DerivedSmo {
        // The paper's Do! split: SPLIT TABLE Task INTO Todo WITH prio=1.
        split(
            "Task",
            &SplitArm {
                table: "Todo".into(),
                condition: Expr::col("prio").eq(Expr::lit(1)),
            },
            None,
            &["author".into(), "task".into(), "prio".into()],
        )
        .unwrap()
    }

    #[test]
    fn single_arm_split_shape() {
        let d = tasky_split();
        assert_eq!(d.kind, "SPLIT");
        assert_eq!(d.src_data[0].rel, "src#Task");
        assert_eq!(d.tgt_data[0].rel, "tgt#Todo");
        assert_eq!(d.src_aux.len(), 2); // R⁻, R*
        assert_eq!(d.tgt_aux.len(), 1); // T'
        assert_eq!(d.to_tgt.len(), 3);
        assert_eq!(d.to_src.len(), 3);
        assert!(d.moves_data);
    }

    #[test]
    fn two_arm_split_has_all_paper_rules() {
        let d = split(
            "T",
            &SplitArm {
                table: "R".into(),
                condition: Expr::col("a").lt(Expr::lit(5)),
            },
            Some(&SplitArm {
                table: "S".into(),
                condition: Expr::col("a").ge(Expr::lit(3)),
            }),
            &["a".into(), "b".into()],
        )
        .unwrap();
        // γ_tgt: Rules 12-17 -> 6 rules; γ_src: Rules 18-25 -> 8 rules.
        assert_eq!(d.to_tgt.len(), 6);
        assert_eq!(d.to_src.len(), 8);
        assert_eq!(d.src_aux.len(), 5); // R⁻, R*, S⁺, S⁻, S*
        assert_eq!(d.tgt_aux.len(), 1); // T'
        let heads_tgt = d.to_tgt.head_relations();
        assert!(heads_tgt.contains(&"tgt#R".to_string()));
        assert!(heads_tgt.contains(&"tgt#S".to_string()));
        assert!(heads_tgt.contains(&"aux#T'".to_string()));
        let heads_src = d.to_src.head_relations();
        assert!(heads_src.contains(&"src#T".to_string()));
        assert!(heads_src.contains(&"aux#S+".to_string()));
    }

    #[test]
    fn merge_is_inverse_of_split() {
        let d = merge(
            &SplitArm {
                table: "R".into(),
                condition: Expr::col("a").lt(Expr::lit(5)),
            },
            &SplitArm {
                table: "S".into(),
                condition: Expr::col("a").ge(Expr::lit(5)),
            },
            "T",
            &["a".into()],
            &["a".into()],
        )
        .unwrap();
        assert_eq!(d.kind, "MERGE");
        // Sources and targets swapped relative to SPLIT.
        assert_eq!(d.src_data.len(), 2);
        assert_eq!(d.tgt_data.len(), 1);
        assert_eq!(d.tgt_data[0].rel, "tgt#T");
        // γ_tgt of MERGE = γ_src of SPLIT (8 rules).
        assert_eq!(d.to_tgt.len(), 8);
        assert_eq!(d.to_src.len(), 6);
    }

    #[test]
    fn merge_rejects_mismatched_schemas() {
        let r = merge(
            &SplitArm {
                table: "R".into(),
                condition: Expr::lit(true),
            },
            &SplitArm {
                table: "S".into(),
                condition: Expr::lit(true),
            },
            "T",
            &["a".into()],
            &["b".into()],
        );
        assert!(r.is_err());
    }
}
