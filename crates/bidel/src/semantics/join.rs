//! JOIN SMOs: inner joins ON PK (B.5), ON FK (B.5 variant, Table 5) and ON
//! condition (B.6); outer joins are the inverses of the corresponding
//! DECOMPOSE SMOs.
//!
//! Inner joins park unmatched tuples in target-side auxiliaries (`S⁺`,
//! `T⁺`) so nothing is lost while the data lives on the target side; outer
//! joins ω-pad them instead (Appendix B.2–B.4 inverses).

use crate::ast::TableSig;
use crate::error::BidelError;
use crate::semantics::{
    aux_rel, gen_name, key_atom, pvar, src_rel, tgt_rel, user_expr, DerivedSmo, ObserveHint,
    SharedAux, TableRef,
};
use crate::Result;
use inverda_datalog::ast::{Atom, Literal, Rule, RuleSet, Term};
use inverda_storage::Expr;

fn full_terms(key: &str, columns: &[String]) -> Vec<Term> {
    let mut t = vec![Term::var(key)];
    t.extend(columns.iter().map(|c| Term::var(pvar(c))));
    t
}

fn check_disjoint(a: &[String], b: &[String], what: &str) -> Result<()> {
    for c in a {
        if b.contains(c) {
            return Err(BidelError::semantics(format!(
                "{what}: column '{c}' occurs in both inputs"
            )));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- ON PK

/// `JOIN TABLE S, T INTO R ON PK` (Appendix B.5). Shared columns join.
pub fn join_pk(
    left: &str,
    right: &str,
    into: &str,
    left_cols: &[String],
    right_cols: &[String],
) -> Result<DerivedSmo> {
    let a = left_cols.to_vec();
    let b = right_cols.to_vec();
    let mut r_cols = a.clone();
    for c in &b {
        if !r_cols.contains(c) {
            r_cols.push(c.clone());
        }
    }
    let s = TableRef::new(left, src_rel(left), a.clone());
    let t = TableRef::new(right, src_rel(right), b.clone());
    let r = TableRef::new(into, tgt_rel(into), r_cols.clone());
    let s_plus = TableRef::new("Splus", aux_rel(&format!("{left}+")), a.clone());
    let t_plus = TableRef::new("Tplus", aux_rel(&format!("{right}+")), b.clone());
    let p = "p";

    // γ_tgt — Rules 177–179.
    let to_tgt = RuleSet::new(vec![
        Rule::new(
            Atom::new(&r.rel, full_terms(p, &r_cols)),
            vec![
                Literal::Pos(Atom::new(&s.rel, full_terms(p, &a))),
                Literal::Pos(Atom::new(&t.rel, full_terms(p, &b))),
            ],
        ),
        Rule::new(
            Atom::new(&s_plus.rel, full_terms(p, &a)),
            vec![
                Literal::Pos(Atom::new(&s.rel, full_terms(p, &a))),
                Literal::Neg(key_atom(&t.rel, p, b.len())),
            ],
        ),
        Rule::new(
            Atom::new(&t_plus.rel, full_terms(p, &b)),
            vec![
                Literal::Pos(Atom::new(&t.rel, full_terms(p, &b))),
                Literal::Neg(key_atom(&s.rel, p, a.len())),
            ],
        ),
    ]);

    // γ_src — Rules 180–183.
    let project = |cols: &[String]| {
        let mut terms = vec![Term::var(p)];
        for c in &r_cols {
            if cols.contains(c) {
                terms.push(Term::var(pvar(c)));
            } else {
                terms.push(Term::Anon);
            }
        }
        Atom::new(&r.rel, terms)
    };
    let to_src = RuleSet::new(vec![
        Rule::new(
            Atom::new(&s.rel, full_terms(p, &a)),
            vec![Literal::Pos(project(&a))],
        ),
        Rule::new(
            Atom::new(&s.rel, full_terms(p, &a)),
            vec![Literal::Pos(Atom::new(&s_plus.rel, full_terms(p, &a)))],
        ),
        Rule::new(
            Atom::new(&t.rel, full_terms(p, &b)),
            vec![Literal::Pos(project(&b))],
        ),
        Rule::new(
            Atom::new(&t.rel, full_terms(p, &b)),
            vec![Literal::Pos(Atom::new(&t_plus.rel, full_terms(p, &b)))],
        ),
    ]);

    Ok(DerivedSmo {
        kind: "JOIN",
        src_data: vec![s, t],
        tgt_data: vec![r],
        src_aux: vec![],
        tgt_aux: vec![s_plus, t_plus],
        shared_aux: vec![],
        to_tgt,
        to_src,
        generators: vec![],
        observe_hints: vec![],
        payload_keyed_aux: vec![],
        moves_data: true,
    })
}

/// `OUTER JOIN TABLE S, T INTO R ON PK` — inverse of DECOMPOSE ON PK.
pub fn outer_join_pk(
    left: &str,
    right: &str,
    into: &str,
    left_cols: &[String],
    right_cols: &[String],
) -> Result<DerivedSmo> {
    let mut r_cols = left_cols.to_vec();
    for c in right_cols {
        if !r_cols.contains(c) {
            r_cols.push(c.clone());
        }
    }
    let d = super::decompose::decompose_pk(
        into,
        &TableSig {
            name: left.to_string(),
            columns: left_cols.to_vec(),
        },
        &TableSig {
            name: right.to_string(),
            columns: right_cols.to_vec(),
        },
        &r_cols,
    )?;
    // The decompose builder names `into` as source and the join inputs as
    // targets; inversion swaps them into join orientation.
    Ok(fix_outer_names(d.inverted("OUTER JOIN"), left, right, into))
}

/// `OUTER JOIN TABLE S, T INTO R ON FK fk` — inverse of DECOMPOSE ON FK.
/// `S` must carry the foreign-key column `fk`; it disappears in `R`.
pub fn outer_join_fk(
    left: &str,
    right: &str,
    into: &str,
    fk: &str,
    left_cols: &[String],
    right_cols: &[String],
) -> Result<DerivedSmo> {
    if !left_cols.contains(&fk.to_string()) {
        return Err(BidelError::semantics(format!(
            "OUTER JOIN ON FK: '{left}' has no column '{fk}'"
        )));
    }
    let a: Vec<String> = left_cols.iter().filter(|c| *c != fk).cloned().collect();
    let mut r_cols = a.clone();
    r_cols.extend(right_cols.iter().cloned());
    let d = super::decompose::decompose_fk(
        into,
        &TableSig {
            name: left.to_string(),
            columns: a,
        },
        &TableSig {
            name: right.to_string(),
            columns: right_cols.to_vec(),
        },
        fk,
        &r_cols,
    )?;
    Ok(fix_outer_names(d.inverted("OUTER JOIN"), left, right, into))
}

/// `OUTER JOIN TABLE S, T INTO R ON c(A,B)` — inverse of DECOMPOSE ON cond.
pub fn outer_join_cond(
    left: &str,
    right: &str,
    into: &str,
    condition: &Expr,
    left_cols: &[String],
    right_cols: &[String],
) -> Result<DerivedSmo> {
    check_disjoint(left_cols, right_cols, "OUTER JOIN ON cond")?;
    let mut r_cols = left_cols.to_vec();
    r_cols.extend(right_cols.iter().cloned());
    let d = super::decompose::decompose_cond(
        into,
        &TableSig {
            name: left.to_string(),
            columns: left_cols.to_vec(),
        },
        &TableSig {
            name: right.to_string(),
            columns: right_cols.to_vec(),
        },
        condition,
        &r_cols,
    )?;
    Ok(fix_outer_names(d.inverted("OUTER JOIN"), left, right, into))
}

/// After inverting a decompose, the relation-name prefixes are wrong way
/// around (`src#`/`tgt#` encode roles, and roles swapped). Rewrite them.
fn fix_outer_names(d: DerivedSmo, _left: &str, _right: &str, _into: &str) -> DerivedSmo {
    use inverda_datalog::simplify::rename_relations;
    use std::collections::BTreeMap;
    let mut map: BTreeMap<String, String> = BTreeMap::new();
    // Decompose named: src#into (now tgt side) and tgt#left / tgt#right
    // (now src side). Swap the prefixes to match the join orientation.
    for t in &d.tgt_data {
        map.insert(t.rel.clone(), t.rel.replacen("src#", "tgt#", 1));
    }
    for s in &d.src_data {
        map.insert(s.rel.clone(), s.rel.replacen("tgt#", "src#", 1));
    }
    let fix_ref = |t: &TableRef| TableRef {
        name: t.name.clone(),
        rel: map.get(&t.rel).cloned().unwrap_or_else(|| t.rel.clone()),
        columns: t.columns.clone(),
    };
    DerivedSmo {
        kind: d.kind,
        src_data: d.src_data.iter().map(fix_ref).collect(),
        tgt_data: d.tgt_data.iter().map(fix_ref).collect(),
        src_aux: d.src_aux.clone(),
        tgt_aux: d.tgt_aux.clone(),
        shared_aux: d.shared_aux.clone(),
        to_tgt: rename_relations(&d.to_tgt, &map),
        to_src: rename_relations(&d.to_src, &map),
        generators: d.generators.clone(),
        observe_hints: d
            .observe_hints
            .iter()
            .map(|h| ObserveHint {
                generator: h.generator.clone(),
                relation: map
                    .get(&h.relation)
                    .cloned()
                    .unwrap_or_else(|| h.relation.clone()),
            })
            .collect(),
        payload_keyed_aux: d.payload_keyed_aux.clone(),
        moves_data: d.moves_data,
    }
}

// ---------------------------------------------------------------- ON FK

/// `JOIN TABLE S, T INTO R ON FK fk` — inner join along a foreign key
/// (variant of B.5, see Table 5). `R` keeps the fk column, so the join is
/// losslessly invertible; unmatched rows park in `S⁺` / `T⁺`.
pub fn join_fk(
    left: &str,
    right: &str,
    into: &str,
    fk: &str,
    left_cols: &[String],
    right_cols: &[String],
) -> Result<DerivedSmo> {
    if !left_cols.contains(&fk.to_string()) {
        return Err(BidelError::semantics(format!(
            "JOIN ON FK: '{left}' has no column '{fk}'"
        )));
    }
    check_disjoint(left_cols, right_cols, "JOIN ON FK")?;
    let a = left_cols.to_vec();
    let b = right_cols.to_vec();
    let mut r_cols = a.clone();
    r_cols.extend(b.iter().cloned());
    let s = TableRef::new(left, src_rel(left), a.clone());
    let t = TableRef::new(right, src_rel(right), b.clone());
    let r = TableRef::new(into, tgt_rel(into), r_cols.clone());
    let s_plus = TableRef::new("Splus", aux_rel(&format!("{left}+")), a.clone());
    let t_plus = TableRef::new("Tplus", aux_rel(&format!("{right}+")), b.clone());
    let p = "p";
    let fkv = pvar(fk);

    // ¬S(_, …, fk = x, …): any S row referencing x.
    let s_ref_pattern = |x: Term| {
        let mut terms = vec![Term::Anon];
        for c in &a {
            if c == fk {
                terms.push(x.clone());
            } else {
                terms.push(Term::Anon);
            }
        }
        Atom::new(&s.rel, terms)
    };

    let to_tgt = RuleSet::new(vec![
        Rule::new(
            Atom::new(&r.rel, full_terms(p, &r_cols)),
            vec![
                Literal::Pos(Atom::new(&s.rel, full_terms(p, &a))),
                // T keyed by the fk value.
                Literal::Pos(Atom::new(&t.rel, {
                    let mut terms = vec![Term::Var(fkv.clone())];
                    terms.extend(b.iter().map(|c| Term::var(pvar(c))));
                    terms
                })),
            ],
        ),
        Rule::new(
            Atom::new(&s_plus.rel, full_terms(p, &a)),
            vec![
                Literal::Pos(Atom::new(&s.rel, full_terms(p, &a))),
                Literal::Neg(Atom::new(&t.rel, {
                    let mut terms = vec![Term::Var(fkv.clone())];
                    terms.extend(std::iter::repeat_n(Term::Anon, b.len()));
                    terms
                })),
            ],
        ),
        Rule::new(
            Atom::new(&t_plus.rel, full_terms("t", &b)),
            vec![
                Literal::Pos(Atom::new(&t.rel, full_terms("t", &b))),
                Literal::Neg(s_ref_pattern(Term::var("t"))),
            ],
        ),
    ]);

    let project = |cols: &[String], key: Term| {
        let mut terms = vec![key];
        for c in &r_cols {
            if cols.contains(c) {
                terms.push(Term::var(pvar(c)));
            } else {
                terms.push(Term::Anon);
            }
        }
        Atom::new(&r.rel, terms)
    };
    let to_src = RuleSet::new(vec![
        Rule::new(
            Atom::new(&s.rel, full_terms(p, &a)),
            vec![Literal::Pos(project(&a, Term::var(p)))],
        ),
        Rule::new(
            Atom::new(&s.rel, full_terms(p, &a)),
            vec![Literal::Pos(Atom::new(&s_plus.rel, full_terms(p, &a)))],
        ),
        // T keyed by the fk column value found in R.
        Rule::new(
            Atom::new(&t.rel, {
                let mut terms = vec![Term::Var(fkv.clone())];
                terms.extend(b.iter().map(|c| Term::var(pvar(c))));
                terms
            }),
            vec![Literal::Pos(project(
                &{
                    let mut cols = b.clone();
                    cols.push(fk.to_string());
                    cols
                },
                Term::Anon,
            ))],
        ),
        Rule::new(
            Atom::new(&t.rel, full_terms("t", &b)),
            vec![Literal::Pos(Atom::new(&t_plus.rel, full_terms("t", &b)))],
        ),
    ]);

    Ok(DerivedSmo {
        kind: "JOIN",
        src_data: vec![s, t],
        tgt_data: vec![r],
        src_aux: vec![],
        tgt_aux: vec![s_plus, t_plus],
        shared_aux: vec![],
        to_tgt,
        to_src,
        generators: vec![],
        observe_hints: vec![],
        payload_keyed_aux: vec![],
        moves_data: true,
    })
}

// ---------------------------------------------------------------- ON COND

/// `JOIN TABLE S, T INTO R ON c(A,B)` (Appendix B.6).
pub fn join_cond(
    left: &str,
    right: &str,
    into: &str,
    condition: &Expr,
    left_cols: &[String],
    right_cols: &[String],
) -> Result<DerivedSmo> {
    check_disjoint(left_cols, right_cols, "JOIN ON cond")?;
    let a = left_cols.to_vec();
    let b = right_cols.to_vec();
    for c in condition.referenced_columns() {
        if !a.contains(&c) && !b.contains(&c) {
            return Err(BidelError::semantics(format!(
                "JOIN ON cond: condition references unknown column '{c}'"
            )));
        }
    }
    let cond = user_expr(condition);
    let mut r_cols = a.clone();
    r_cols.extend(b.iter().cloned());
    let s = TableRef::new(left, src_rel(left), a.clone());
    let t = TableRef::new(right, src_rel(right), b.clone());
    let r = TableRef::new(into, tgt_rel(into), r_cols.clone());
    let s_plus = TableRef::new("Splus", aux_rel(&format!("{left}+")), a.clone());
    let t_plus = TableRef::new("Tplus", aux_rel(&format!("{right}+")), b.clone());
    let r_minus = TableRef::new(
        "Rminus",
        aux_rel(&format!("{into}-")),
        vec!["t".to_string()],
    );
    let id = TableRef::new(
        "ID",
        aux_rel(&format!("ID_{into}")),
        vec!["s".to_string(), "t".to_string()],
    );
    let id_old = id.rel.clone();
    let id_new = format!("{}@new", id.rel);
    let gen_r = gen_name(&format!("{into}.self"));
    let gen_s = gen_name(&format!("{into}.{left}"));
    let gen_t = gen_name(&format!("{into}.{right}"));

    let (rv, sv, tv) = ("r", "s", "t");
    let id_o = |r: Term, s: Term, t: Term| Atom::new(&id_old, vec![r, s, t]);
    let id_n = |r: Term, s: Term, t: Term| Atom::new(&id_new, vec![r, s, t]);
    let s_atom = |key: &str| Atom::new(&s.rel, full_terms(key, &a));
    let t_atom = |key: &str| Atom::new(&t.rel, full_terms(key, &b));
    let r_atom = |key: &str| Atom::new(&r.rel, full_terms(key, &r_cols));
    let skolem = |var: &str, generator: &str, cols: &[String]| Literal::Skolem {
        var: var.into(),
        generator: generator.into(),
        args: cols.iter().map(|c| Term::var(pvar(c))).collect(),
    };

    // γ_tgt — Rules 187–192 (c required on survivors; registry supplies
    // repeatable ids — see module docs for the deviations).
    let to_tgt = RuleSet::new(vec![
        Rule::new(
            r_atom(rv),
            vec![
                Literal::Pos(id_o(Term::var(rv), Term::var(sv), Term::var(tv))),
                Literal::Pos(s_atom(sv)),
                Literal::Pos(t_atom(tv)),
                Literal::Cond(cond.clone()),
            ],
        ),
        Rule::new(
            r_atom(rv),
            vec![
                Literal::Pos(s_atom(sv)),
                Literal::Pos(t_atom(tv)),
                Literal::Cond(cond.clone()),
                Literal::Neg(Atom::new(&r_minus.rel, vec![Term::var(sv), Term::var(tv)])),
                Literal::Neg(id_o(Term::Anon, Term::var(sv), Term::var(tv))),
                skolem(rv, &gen_r, &r_cols),
            ],
        ),
        Rule::new(
            id_n(Term::var(rv), Term::var(sv), Term::var(tv)),
            vec![
                Literal::Pos(id_o(Term::var(rv), Term::var(sv), Term::var(tv))),
                Literal::Pos(s_atom(sv)),
                Literal::Pos(t_atom(tv)),
                Literal::Cond(cond.clone()),
            ],
        ),
        Rule::new(
            id_n(Term::var(rv), Term::var(sv), Term::var(tv)),
            vec![
                Literal::Pos(s_atom(sv)),
                Literal::Pos(t_atom(tv)),
                Literal::Cond(cond.clone()),
                Literal::Neg(Atom::new(&r_minus.rel, vec![Term::var(sv), Term::var(tv)])),
                Literal::Neg(id_o(Term::Anon, Term::var(sv), Term::var(tv))),
                skolem(rv, &gen_r, &r_cols),
            ],
        ),
        Rule::new(
            Atom::new(&s_plus.rel, full_terms(sv, &a)),
            vec![
                Literal::Pos(s_atom(sv)),
                Literal::Neg(id_n(Term::Anon, Term::var(sv), Term::Anon)),
            ],
        ),
        Rule::new(
            Atom::new(&t_plus.rel, full_terms(tv, &b)),
            vec![
                Literal::Pos(t_atom(tv)),
                Literal::Neg(id_n(Term::Anon, Term::Anon, Term::var(tv))),
            ],
        ),
    ]);

    // γ_src — Rules 193–200.
    let to_src = RuleSet::new(vec![
        Rule::new(
            s_atom(sv),
            vec![
                Literal::Pos({
                    let mut terms = vec![Term::var(rv)];
                    for c in &r_cols {
                        if a.contains(c) {
                            terms.push(Term::var(pvar(c)));
                        } else {
                            terms.push(Term::Anon);
                        }
                    }
                    Atom::new(&r.rel, terms)
                }),
                Literal::Pos(id_o(Term::var(rv), Term::var(sv), Term::Anon)),
            ],
        ),
        Rule::new(
            s_atom(sv),
            vec![
                Literal::Pos({
                    let mut terms = vec![Term::var(rv)];
                    for c in &r_cols {
                        if a.contains(c) {
                            terms.push(Term::var(pvar(c)));
                        } else {
                            terms.push(Term::Anon);
                        }
                    }
                    Atom::new(&r.rel, terms)
                }),
                Literal::Neg(id_o(Term::var(rv), Term::Anon, Term::Anon)),
                skolem(sv, &gen_s, &a),
            ],
        ),
        Rule::new(
            s_atom(sv),
            vec![Literal::Pos(Atom::new(&s_plus.rel, full_terms(sv, &a)))],
        ),
        Rule::new(
            t_atom(tv),
            vec![
                Literal::Pos({
                    let mut terms = vec![Term::var(rv)];
                    for c in &r_cols {
                        if b.contains(c) {
                            terms.push(Term::var(pvar(c)));
                        } else {
                            terms.push(Term::Anon);
                        }
                    }
                    Atom::new(&r.rel, terms)
                }),
                Literal::Pos(id_o(Term::var(rv), Term::Anon, Term::var(tv))),
            ],
        ),
        Rule::new(
            t_atom(tv),
            vec![
                Literal::Pos({
                    let mut terms = vec![Term::var(rv)];
                    for c in &r_cols {
                        if b.contains(c) {
                            terms.push(Term::var(pvar(c)));
                        } else {
                            terms.push(Term::Anon);
                        }
                    }
                    Atom::new(&r.rel, terms)
                }),
                Literal::Neg(id_o(Term::var(rv), Term::Anon, Term::Anon)),
                skolem(tv, &gen_t, &b),
            ],
        ),
        Rule::new(
            t_atom(tv),
            vec![Literal::Pos(Atom::new(&t_plus.rel, full_terms(tv, &b)))],
        ),
        // ID over the reconstructed sides (Rule 199).
        Rule::new(
            id_n(Term::var(rv), Term::var(sv), Term::var(tv)),
            vec![
                Literal::Pos(r_atom(rv)),
                Literal::Pos(s_atom(sv)),
                Literal::Pos(t_atom(tv)),
            ],
        ),
        // R⁻ (Rule 200).
        Rule::new(
            Atom::new(&r_minus.rel, vec![Term::var(sv), Term::var(tv)]),
            vec![
                Literal::Pos(s_atom(sv)),
                Literal::Pos(t_atom(tv)),
                Literal::Cond(cond.clone()),
                Literal::Neg(Atom::new(&r.rel, {
                    let mut terms = vec![Term::Anon];
                    terms.extend(r_cols.iter().map(|c| Term::var(pvar(c))));
                    terms
                })),
            ],
        ),
    ]);

    Ok(DerivedSmo {
        kind: "JOIN",
        src_data: vec![s.clone(), t.clone()],
        tgt_data: vec![r.clone()],
        src_aux: vec![r_minus],
        tgt_aux: vec![s_plus, t_plus],
        shared_aux: vec![SharedAux {
            table: id,
            old_name: id_old,
            new_name: id_new,
        }],
        to_tgt,
        to_src,
        generators: vec![gen_r.clone(), gen_s.clone(), gen_t.clone()],
        observe_hints: vec![
            ObserveHint {
                generator: gen_r,
                relation: r.rel,
            },
            ObserveHint {
                generator: gen_s,
                relation: s.rel,
            },
            ObserveHint {
                generator: gen_t,
                relation: t.rel,
            },
        ],
        // The shared `ID(r, s, t)` relates identities, not payloads — no
        // update purge (see `decompose_cond`, this SMO's mirror image).
        payload_keyed_aux: vec![],
        moves_data: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_pk_shape() {
        let d = join_pk("S", "T", "R", &["a".into()], &["b".into()]).unwrap();
        assert_eq!(d.tgt_data[0].columns, vec!["a", "b"]);
        assert_eq!(d.tgt_aux.len(), 2);
        assert_eq!(d.to_tgt.len(), 3);
        assert_eq!(d.to_src.len(), 4);
    }

    #[test]
    fn join_pk_with_shared_columns() {
        let d = join_pk(
            "S",
            "T",
            "R",
            &["a".into(), "k".into()],
            &["k".into(), "b".into()],
        )
        .unwrap();
        assert_eq!(d.tgt_data[0].columns, vec!["a", "k", "b"]);
    }

    #[test]
    fn join_fk_keeps_fk_column() {
        let d = join_fk(
            "Task",
            "Author",
            "Flat",
            "author_id",
            &["task".into(), "author_id".into()],
            &["name".into()],
        )
        .unwrap();
        assert_eq!(d.tgt_data[0].columns, vec!["task", "author_id", "name"]);
        // The join rule binds T's key with the fk variable.
        let join_rule = &d.to_tgt.rules[0];
        let text = join_rule.to_string();
        assert!(text.contains("src#Author(c_author_id"), "{text}");
    }

    #[test]
    fn join_fk_rejects_missing_fk() {
        assert!(join_fk("S", "T", "R", "zz", &["a".into()], &["b".into()]).is_err());
    }

    #[test]
    fn outer_join_pk_is_decompose_inverse_with_fixed_names() {
        let d = outer_join_pk("S", "T", "R", &["a".into()], &["b".into()]).unwrap();
        assert_eq!(d.kind, "OUTER JOIN");
        assert_eq!(d.src_data.len(), 2);
        assert_eq!(d.src_data[0].rel, "src#S");
        assert_eq!(d.tgt_data[0].rel, "tgt#R");
        // γ_tgt of the outer join = γ_src of the decompose (3 rules).
        assert_eq!(d.to_tgt.len(), 3);
        // All rule relations must use the fixed prefixes.
        for rule in d.to_tgt.rules.iter().chain(d.to_src.rules.iter()) {
            let text = rule.to_string();
            assert!(!text.contains("src#R("), "unfixed name in {text}");
        }
    }

    #[test]
    fn join_cond_has_shared_id_and_generators() {
        let d = join_cond(
            "S",
            "T",
            "R",
            &Expr::col("a").eq(Expr::col("b")),
            &["a".into()],
            &["b".into()],
        )
        .unwrap();
        assert_eq!(d.shared_aux.len(), 1);
        assert_eq!(d.generators.len(), 3);
        assert_eq!(d.src_aux.len(), 1); // R⁻
        assert_eq!(d.tgt_aux.len(), 2); // S⁺, T⁺
    }

    #[test]
    fn join_cond_rejects_overlap_and_unknown_cols() {
        assert!(join_cond(
            "S",
            "T",
            "R",
            &Expr::lit(true),
            &["a".into()],
            &["a".into()],
        )
        .is_err());
        assert!(join_cond(
            "S",
            "T",
            "R",
            &Expr::col("zz").eq(Expr::lit(1)),
            &["a".into()],
            &["b".into()],
        )
        .is_err());
    }
}
