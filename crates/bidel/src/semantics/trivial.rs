//! CREATE TABLE, DROP TABLE, RENAME TABLE, RENAME COLUMN.
//!
//! The paper: "creating, dropping, and renaming tables as well as renaming
//! columns exclusively affects the schema version catalog and does not
//! include any kind of data evolution, hence there is no need to define
//! mapping rules for these SMOs." We still emit identity rule sets for the
//! renames so the propagation engine can treat every SMO uniformly; they
//! reduce to per-tuple copies. CREATE/DROP TABLE have no mappings at all —
//! their tables begin/end at this point of the genealogy, and materializing
//! them never relocates data (`moves_data = false`).

use crate::error::BidelError;
use crate::semantics::{src_rel, table_atom, tgt_rel, DerivedSmo, TableRef};
use crate::Result;
use inverda_datalog::ast::{Literal, Rule, RuleSet};

/// `CREATE TABLE R(c1,…,cn)`.
pub fn create_table(table: &str, columns: &[String]) -> Result<DerivedSmo> {
    if columns.is_empty() {
        return Err(BidelError::semantics(format!(
            "CREATE TABLE {table}: at least one column required"
        )));
    }
    for (i, c) in columns.iter().enumerate() {
        if columns[..i].contains(c) {
            return Err(BidelError::semantics(format!(
                "CREATE TABLE {table}: duplicate column '{c}'"
            )));
        }
    }
    Ok(DerivedSmo {
        kind: "CREATE TABLE",
        src_data: vec![],
        tgt_data: vec![TableRef::new(table, tgt_rel(table), columns.to_vec())],
        src_aux: vec![],
        tgt_aux: vec![],
        shared_aux: vec![],
        to_tgt: RuleSet::default(),
        to_src: RuleSet::default(),
        generators: vec![],
        observe_hints: vec![],
        payload_keyed_aux: vec![],
        moves_data: false,
    })
}

/// `DROP TABLE R` — the table version ends here; data stays reachable for
/// the older versions that still contain it.
pub fn drop_table(table: &str, columns: &[String]) -> Result<DerivedSmo> {
    Ok(DerivedSmo {
        kind: "DROP TABLE",
        src_data: vec![TableRef::new(table, src_rel(table), columns.to_vec())],
        tgt_data: vec![],
        src_aux: vec![],
        tgt_aux: vec![],
        shared_aux: vec![],
        to_tgt: RuleSet::default(),
        to_src: RuleSet::default(),
        generators: vec![],
        observe_hints: vec![],
        payload_keyed_aux: vec![],
        moves_data: false,
    })
}

/// `RENAME TABLE R INTO R'` — identity mapping, new name.
pub fn rename_table(table: &str, to: &str, columns: &[String]) -> Result<DerivedSmo> {
    if table == to {
        return Err(BidelError::semantics(format!(
            "RENAME TABLE {table}: old and new name are identical"
        )));
    }
    identity_smo("RENAME TABLE", table, to, columns, columns)
}

/// `RENAME COLUMN r IN R TO r'` — identity mapping, new column label.
pub fn rename_column(
    table: &str,
    column: &str,
    to: &str,
    columns: &[String],
) -> Result<DerivedSmo> {
    let idx = columns.iter().position(|c| c == column).ok_or_else(|| {
        BidelError::semantics(format!(
            "RENAME COLUMN: '{column}' does not exist in '{table}'"
        ))
    })?;
    if columns.contains(&to.to_string()) {
        return Err(BidelError::semantics(format!(
            "RENAME COLUMN: '{to}' already exists in '{table}'"
        )));
    }
    let mut new_cols = columns.to_vec();
    new_cols[idx] = to.to_string();
    identity_smo("RENAME COLUMN", table, table, columns, &new_cols)
}

/// Identity SMO: positionally copies rows; only labels change.
fn identity_smo(
    kind: &'static str,
    src_name: &str,
    tgt_name: &str,
    src_cols: &[String],
    tgt_cols: &[String],
) -> Result<DerivedSmo> {
    let src = TableRef::new(src_name, src_rel(src_name), src_cols.to_vec());
    let tgt = TableRef::new(tgt_name, tgt_rel(tgt_name), tgt_cols.to_vec());
    // Use the *source* column list for payload variables in both atoms so
    // the rules are positional copies.
    let to_tgt = RuleSet::new(vec![Rule::new(
        {
            let mut a = table_atom(&tgt.rel, "p", src_cols);
            a.relation = tgt.rel.clone();
            a
        },
        vec![Literal::Pos(table_atom(&src.rel, "p", src_cols))],
    )]);
    let to_src = RuleSet::new(vec![Rule::new(
        table_atom(&src.rel, "p", src_cols),
        vec![Literal::Pos({
            let mut a = table_atom(&tgt.rel, "p", src_cols);
            a.relation = tgt.rel.clone();
            a
        })],
    )]);
    Ok(DerivedSmo {
        kind,
        src_data: vec![src],
        tgt_data: vec![tgt],
        src_aux: vec![],
        tgt_aux: vec![],
        shared_aux: vec![],
        to_tgt,
        to_src,
        generators: vec![],
        observe_hints: vec![],
        payload_keyed_aux: vec![],
        moves_data: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_shape() {
        let d = create_table("T", &["a".into(), "b".into()]).unwrap();
        assert!(d.src_data.is_empty());
        assert_eq!(d.tgt_data[0].columns, vec!["a", "b"]);
        assert!(!d.moves_data);
        assert!(d.to_tgt.is_empty() && d.to_src.is_empty());
        assert!(create_table("T", &[]).is_err());
        assert!(create_table("T", &["a".into(), "a".into()]).is_err());
    }

    #[test]
    fn drop_table_keeps_source() {
        let d = drop_table("T", &["a".into()]).unwrap();
        assert_eq!(d.src_data.len(), 1);
        assert!(d.tgt_data.is_empty());
        assert!(!d.moves_data);
    }

    #[test]
    fn rename_column_changes_label_only() {
        // The paper's: RENAME COLUMN author IN author TO name.
        let d = rename_column("author", "author", "name", &["author".into()]).unwrap();
        assert_eq!(d.tgt_data[0].columns, vec!["name"]);
        assert_eq!(d.to_tgt.len(), 1);
        assert_eq!(
            d.to_tgt.rules[0].to_string(),
            "tgt#author(p, c_author) ← src#author(p, c_author)"
        );
        assert!(rename_column("t", "zz", "name", &["a".into()]).is_err());
        assert!(rename_column("t", "a", "b", &["a".into(), "b".into()]).is_err());
    }

    #[test]
    fn rename_table_identity() {
        let d = rename_table("A", "B", &["x".into()]).unwrap();
        assert_eq!(d.src_data[0].rel, "src#A");
        assert_eq!(d.tgt_data[0].rel, "tgt#B");
        assert!(rename_table("A", "A", &["x".into()]).is_err());
    }
}
