//! SMO semantics: side schemas and the γ_tgt / γ_src Datalog rule templates.
//!
//! Every SMO instance maps between two *side states*:
//!
//! * the **source side** — the data tables of the consumed table versions
//!   plus the source-side auxiliary tables,
//! * the **target side** — the produced table versions' data tables plus the
//!   target-side auxiliary tables.
//!
//! `γ_tgt` derives the complete target-side state from the source-side state;
//! `γ_src` the reverse (paper Figure 5). Auxiliary tables hold the
//! information one side cannot represent (lost twins, separated twins,
//! condition violators, computed column values, generated identifiers —
//! Section 4). The id tables of the condition-based SMOs are consumed *and*
//! re-derived by both directions; they are modeled as [`SharedAux`] with
//! distinct `old`/`new` relation names (the paper's `IDo`/`IDn`).
//!
//! ## Relation-name conventions
//!
//! Rule templates use locally scoped relation names that the catalog later
//! renames to globally unique physical/virtual instance names:
//!
//! * `src#<table>` — source-version table,
//! * `tgt#<table>` — target-version table,
//! * `aux#<tag>` (+ `aux#<tag>@new` for shared aux) — auxiliary tables,
//! * `gen#<tag>` — skolem id generators.
//!
//! Payload variables are the column names prefixed with `c_` (so engine
//! variables like `p`, `t`, `fk` can never collide with user columns).
//!
//! ## Documented deviations from the paper's rule sets
//!
//! * **FK-decompose (B.3) is de-staged**: the paper's `To`/`Tn` old/new
//!   staging exists to reuse identifiers of already-known payloads. We get
//!   the same effect from the memoized skolem registry (`idT(B)` always
//!   returns the same id for the same payload), which keeps the rule set
//!   delta-friendly so writes through it propagate incrementally.
//! * **Cond-join/decompose id retention**: the paper's rule `IDn ← IDo`
//!   keeps id entries of deleted pairs forever; we drop dead entries and
//!   rely on the memoized registry for repeatable identifiers, so that the
//!   unmatched-row auxiliaries (`S⁺`, `T⁺`) stay correct after deletions.
//! * **Inner join keeps match-condition semantics on update**: a matched
//!   pair whose payload no longer satisfies the condition dissolves (the
//!   paper's rules 187/189 are ambiguous on this point).
//! * **ω guards**: all-NULL sides produced by outer joins are guarded
//!   explicitly (`¬allnull(A)`) where the paper writes `A ≠ ω_R`.

mod column;
mod decompose;
mod join;
mod split;
mod trivial;

use crate::ast::{DecomposeKind, JoinKind, Smo};
use crate::error::BidelError;
use crate::Result;
use inverda_datalog::ast::{Atom, RuleSet, Term};
use inverda_storage::Expr;
use std::collections::BTreeMap;

/// A named relation with its column list, as used in SMO rule templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// User-visible table name (e.g. `Todo`).
    pub name: String,
    /// Relation name used inside the rule sets (e.g. `tgt#Todo`).
    pub rel: String,
    /// Column names (the key `p` is implicit).
    pub columns: Vec<String>,
}

impl TableRef {
    /// Construct a table ref.
    pub fn new(
        name: impl Into<String>,
        rel: impl Into<String>,
        columns: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        TableRef {
            name: name.into(),
            rel: rel.into(),
            columns: columns.into_iter().map(Into::into).collect(),
        }
    }
}

/// An auxiliary table consumed (as `old_name`) and re-derived (as
/// `new_name`) by both mapping directions — the id tables of the
/// condition-based SMOs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedAux {
    /// The physical table.
    pub table: TableRef,
    /// Relation name bound to the current physical state in rule bodies.
    pub old_name: String,
    /// Head relation name carrying the post-mapping state.
    pub new_name: String,
}

/// A hint telling the engine to seed the skolem registry from a relation's
/// rows: each `(key, payload)` row of `relation` records the assignment
/// `generator(payload) → key`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserveHint {
    /// Skolem generator name (`gen#…`).
    pub generator: String,
    /// Relation whose rows are known assignments.
    pub relation: String,
}

/// The derived semantics of one SMO instance.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedSmo {
    /// SMO type tag (e.g. `"SPLIT"`).
    pub kind: &'static str,
    /// Source-version data tables consumed.
    pub src_data: Vec<TableRef>,
    /// Target-version data tables produced.
    pub tgt_data: Vec<TableRef>,
    /// Auxiliary tables physically present when the SMO is *virtualized*
    /// (data stored on the source side).
    pub src_aux: Vec<TableRef>,
    /// Auxiliary tables physically present when the SMO is *materialized*
    /// (data stored on the target side).
    pub tgt_aux: Vec<TableRef>,
    /// Auxiliary tables physically present on both sides (id tables).
    pub shared_aux: Vec<SharedAux>,
    /// γ_tgt: derives the target-side state (tgt data + tgt aux + shared
    /// `@new`) from the source-side state (src data + src aux + shared old).
    pub to_tgt: RuleSet,
    /// γ_src: the reverse direction.
    pub to_src: RuleSet,
    /// Skolem generators used by the rule sets.
    pub generators: Vec<String>,
    /// Registry seeding hints (see [`ObserveHint`]).
    pub observe_hints: Vec<ObserveHint>,
    /// Relation names of auxiliary tables whose rows memoize a
    /// **payload-derived** generator assignment for a source row key
    /// (Appendix B.3's `ID_R(p, t)`: `t = idT(payload(p))`). An update that
    /// replaces row `p`'s payload invalidates such an entry — a stale one
    /// would pin the old payload's id onto the new payload and collide with
    /// the old payload's surviving twin — so the write path purges
    /// key-matching rows on *updates* as well as deletes when the owning
    /// SMO is adjacent to (not traversed by) the propagation. Re-derivation
    /// then re-mints through the skolem registry, which reproduces the same
    /// id whenever the generator arguments did not actually change.
    pub payload_keyed_aux: Vec<String>,
    /// Whether materializing this SMO relocates data. `CREATE TABLE` and
    /// `DROP TABLE` do not move data: their tables simply begin / end.
    pub moves_data: bool,
}

impl DerivedSmo {
    /// Swap the two sides: turns a SPLIT into a MERGE, an ADD COLUMN into a
    /// DROP COLUMN, a DECOMPOSE into an OUTER JOIN, and vice versa
    /// (Appendix B: "exchanging the rule sets γ_src and γ_tgt yields the
    /// inverse SMO").
    pub fn inverted(mut self, kind: &'static str) -> Self {
        std::mem::swap(&mut self.src_data, &mut self.tgt_data);
        std::mem::swap(&mut self.src_aux, &mut self.tgt_aux);
        std::mem::swap(&mut self.to_tgt, &mut self.to_src);
        self.kind = kind;
        self
    }

    /// All auxiliary tables regardless of side.
    pub fn all_aux(&self) -> impl Iterator<Item = &TableRef> {
        self.src_aux
            .iter()
            .chain(self.tgt_aux.iter())
            .chain(self.shared_aux.iter().map(|s| &s.table))
    }
}

/// The source-relation name prefix.
pub fn src_rel(name: &str) -> String {
    format!("src#{name}")
}

/// The target-relation name prefix.
pub fn tgt_rel(name: &str) -> String {
    format!("tgt#{name}")
}

/// The auxiliary-relation name prefix.
pub fn aux_rel(tag: &str) -> String {
    format!("aux#{tag}")
}

/// The generator name prefix.
pub fn gen_name(tag: &str) -> String {
    format!("gen#{tag}")
}

/// Payload variable for a column.
pub fn pvar(column: &str) -> String {
    format!("c_{column}")
}

/// Payload variables for a column list.
pub fn pvars(columns: &[String]) -> Vec<String> {
    columns.iter().map(|c| pvar(c)).collect()
}

/// Atom `rel(key, c_col1, …, c_coln)`.
pub fn table_atom(rel: &str, key: &str, columns: &[String]) -> Atom {
    let mut terms = vec![Term::var(key)];
    terms.extend(columns.iter().map(|c| Term::var(pvar(c))));
    Atom::new(rel, terms)
}

/// Atom `rel(key, _, …, _)` — key only, payload anonymous.
pub fn key_atom(rel: &str, key: &str, arity: usize) -> Atom {
    let mut terms = vec![Term::var(key)];
    terms.extend(std::iter::repeat_n(Term::Anon, arity));
    Atom::new(rel, terms)
}

/// Rewrite a user expression so its column references use payload variables.
pub fn user_expr(e: &Expr) -> Expr {
    let mapping: BTreeMap<String, String> = e
        .referenced_columns()
        .into_iter()
        .map(|c| (c.clone(), pvar(&c)))
        .collect();
    e.rename_columns(&mapping)
}

/// `IsNull(c1) AND … AND IsNull(cn)` — the paper's `A = ω` test.
pub fn all_null(columns: &[String]) -> Expr {
    let mut iter = columns.iter();
    let first = iter.next().expect("non-empty column list");
    let mut e = Expr::IsNull(Box::new(Expr::col(pvar(first))));
    for c in iter {
        e = e.and(Expr::IsNull(Box::new(Expr::col(pvar(c)))));
    }
    e
}

/// `¬(A = ω)` — at least one column non-NULL.
pub fn not_all_null(columns: &[String]) -> Expr {
    all_null(columns).negate()
}

/// Resolve the semantics of an SMO against the source version's table
/// schemas (`table name → column list`).
pub fn derive_smo(smo: &Smo, src_schemas: &BTreeMap<String, Vec<String>>) -> Result<DerivedSmo> {
    let columns_of = |table: &str| -> Result<Vec<String>> {
        src_schemas
            .get(table)
            .cloned()
            .ok_or_else(|| BidelError::semantics(format!("unknown source table '{table}'")))
    };
    match smo {
        Smo::CreateTable { table, columns } => trivial::create_table(table, columns),
        Smo::DropTable { table } => trivial::drop_table(table, &columns_of(table)?),
        Smo::RenameTable { table, to } => trivial::rename_table(table, to, &columns_of(table)?),
        Smo::RenameColumn { table, column, to } => {
            trivial::rename_column(table, column, to, &columns_of(table)?)
        }
        Smo::AddColumn {
            table,
            column,
            function,
        } => column::add_column(table, column, function, &columns_of(table)?),
        Smo::DropColumn {
            table,
            column,
            default,
        } => column::drop_column(table, column, default, &columns_of(table)?),
        Smo::Split {
            table,
            first,
            second,
        } => split::split(table, first, second.as_ref(), &columns_of(table)?),
        Smo::Merge {
            first,
            second,
            into,
        } => {
            let first_cols = columns_of(&first.table)?;
            let second_cols = columns_of(&second.table)?;
            split::merge(first, second, into, &first_cols, &second_cols)
        }
        Smo::Decompose {
            table,
            first,
            second,
            on,
        } => {
            let cols = columns_of(table)?;
            match on {
                DecomposeKind::Pk => decompose::decompose_pk(table, first, second, &cols),
                DecomposeKind::Fk(fk) => decompose::decompose_fk(table, first, second, fk, &cols),
                DecomposeKind::Cond(c) => decompose::decompose_cond(table, first, second, c, &cols),
            }
        }
        Smo::Join {
            left,
            right,
            into,
            on,
            outer,
        } => {
            let left_cols = columns_of(left)?;
            let right_cols = columns_of(right)?;
            match (outer, on) {
                (false, JoinKind::Pk) => join::join_pk(left, right, into, &left_cols, &right_cols),
                (false, JoinKind::Fk(fk)) => {
                    join::join_fk(left, right, into, fk, &left_cols, &right_cols)
                }
                (false, JoinKind::Cond(c)) => {
                    join::join_cond(left, right, into, c, &left_cols, &right_cols)
                }
                (true, JoinKind::Pk) => {
                    join::outer_join_pk(left, right, into, &left_cols, &right_cols)
                }
                (true, JoinKind::Fk(fk)) => {
                    join::outer_join_fk(left, right, into, fk, &left_cols, &right_cols)
                }
                (true, JoinKind::Cond(c)) => {
                    join::outer_join_cond(left, right, into, c, &left_cols, &right_cols)
                }
            }
        }
    }
}

/// Check that `sub` is a subset of `sup`.
pub(crate) fn require_subset(sub: &[String], sup: &[String], what: &str) -> Result<()> {
    for c in sub {
        if !sup.contains(c) {
            return Err(BidelError::semantics(format!(
                "{what}: column '{c}' does not exist in the source table"
            )));
        }
    }
    Ok(())
}

/// Check that `a ∪ b` covers exactly the source columns.
pub(crate) fn require_cover(a: &[String], b: &[String], src: &[String], what: &str) -> Result<()> {
    require_subset(a, src, what)?;
    require_subset(b, src, what)?;
    for c in src {
        if !a.contains(c) && !b.contains(c) {
            return Err(BidelError::semantics(format!(
                "{what}: source column '{c}' is covered by neither target"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_naming() {
        assert_eq!(src_rel("Task"), "src#Task");
        assert_eq!(tgt_rel("Todo"), "tgt#Todo");
        assert_eq!(aux_rel("Tprime"), "aux#Tprime");
        assert_eq!(pvar("prio"), "c_prio");
    }

    #[test]
    fn table_atom_layout() {
        let a = table_atom("src#T", "p", &["a".into(), "b".into()]);
        assert_eq!(a.to_string(), "src#T(p, c_a, c_b)");
        let k = key_atom("src#T", "p", 2);
        assert_eq!(k.to_string(), "src#T(p, _, _)");
    }

    #[test]
    fn user_expr_prefixes_columns() {
        let e = Expr::col("prio").eq(Expr::lit(1));
        assert_eq!(user_expr(&e).to_string(), "c_prio = 1");
    }

    #[test]
    fn all_null_shape() {
        let e = all_null(&["a".into(), "b".into()]);
        assert_eq!(e.to_string(), "(c_a IS NULL AND c_b IS NULL)");
    }

    #[test]
    fn cover_checks() {
        let src = vec!["a".to_string(), "b".to_string()];
        assert!(require_cover(&["a".into()], &["b".into()], &src, "t").is_ok());
        assert!(require_cover(&["a".into()], &["a".into()], &src, "t").is_err());
        assert!(require_subset(&["z".into()], &src, "t").is_err());
    }
}
