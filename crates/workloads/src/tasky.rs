//! The TasKy running example (Figure 1) and its workloads, plus the
//! hand-written delta-code baseline of Section 8.1/8.2.

use crate::{Mix, OpKind};
use inverda_core::Inverda;
use inverda_storage::{Key, Relation, Storage, TableSchema, Value, WriteBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// BiDEL script for the initial TasKy version.
pub const SCRIPT_TASKY: &str =
    "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author, task, prio);";

/// BiDEL script for the Do! phone app version (Figure 1 left).
pub const SCRIPT_DO: &str = "CREATE SCHEMA VERSION Do! FROM TasKy WITH \
     SPLIT TABLE Task INTO Todo WITH prio = 1; \
     DROP COLUMN prio FROM Todo DEFAULT 1;";

/// BiDEL script for the TasKy2 release (Figure 1 right).
pub const SCRIPT_TASKY2: &str = "CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH \
     DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author; \
     RENAME COLUMN author IN Author TO name;";

/// Build the full three-version TasKy database (no data).
pub fn build() -> Inverda {
    let db = Inverda::new();
    db.execute(SCRIPT_TASKY).expect("initial version");
    db.execute(SCRIPT_DO).expect("Do! version");
    db.execute(SCRIPT_TASKY2).expect("TasKy2 version");
    db
}

/// Number of distinct authors in generated data.
pub const AUTHOR_POOL: usize = 200;

/// Generate a deterministic task row.
pub fn task_row(i: usize) -> Vec<Value> {
    vec![
        Value::text(format!("author{:03}", i % AUTHOR_POOL)),
        Value::text(format!("task number {i}")),
        Value::Int((i % 3 + 1) as i64),
    ]
}

/// Load `n` tasks through the TasKy version. Returns the keys.
pub fn load_tasks(db: &Inverda, n: usize) -> Vec<Key> {
    let rows: Vec<Vec<Value>> = (0..n).map(task_row).collect();
    db.insert_many("TasKy", "Task", rows).expect("bulk load")
}

/// The main table of each TasKy schema version.
pub fn main_table(version: &str) -> &'static str {
    match version {
        "Do!" => "Todo",
        _ => "Task",
    }
}

/// A fresh row for the version's main table.
pub fn fresh_row(version: &str, i: usize, author_id: Option<i64>) -> Vec<Value> {
    match version {
        "Do!" => vec![
            Value::text(format!("author{:03}", i % AUTHOR_POOL)),
            Value::text(format!("new todo {i}")),
        ],
        "TasKy2" => vec![
            Value::text(format!("new task {i}")),
            Value::Int((i % 3 + 1) as i64),
            author_id.map(Value::Int).unwrap_or(Value::Null),
        ],
        _ => task_row(i),
    }
}

/// Statistics from a workload run.
#[derive(Debug, Clone, Default)]
pub struct WorkloadStats {
    /// Operations executed per kind: read, insert, update, delete.
    pub ops: [usize; 4],
    /// Total rows touched by reads.
    pub rows_read: usize,
}

/// Run `n_ops` operations of `mix` against one schema version. Updates and
/// deletes address keys from `keys` (which is kept in sync).
pub fn run_mix(
    db: &Inverda,
    version: &str,
    mix: Mix,
    n_ops: usize,
    keys: &mut Vec<Key>,
    rng: &mut StdRng,
) -> WorkloadStats {
    let table = main_table(version);
    let mut stats = WorkloadStats::default();
    // For TasKy2 inserts we need a valid author id.
    let author_id = if version == "TasKy2" {
        db.scan("TasKy2", "Author")
            .ok()
            .and_then(|authors| authors.keys().next().map(|k| k.0 as i64))
    } else {
        None
    };
    for i in 0..n_ops {
        match mix.pick(rng.gen_range(0..100)) {
            OpKind::Read => {
                let rel = db.scan(version, table).expect("scan");
                stats.rows_read += rel.len();
                stats.ops[0] += 1;
            }
            OpKind::Insert => {
                let row = fresh_row(version, i, author_id);
                let k = db.insert(version, table, row).expect("insert");
                keys.push(k);
                stats.ops[1] += 1;
            }
            OpKind::Update => {
                if keys.is_empty() {
                    continue;
                }
                let k = keys[rng.gen_range(0..keys.len())];
                if let Some(mut row) = db.get(version, table, k).expect("get") {
                    // Touch the task text column.
                    let idx = match version {
                        "Do!" => 1,
                        "TasKy2" => 0,
                        _ => 1,
                    };
                    row[idx] = Value::text(format!("updated {i}"));
                    db.update(version, table, k, row).expect("update");
                }
                stats.ops[2] += 1;
            }
            OpKind::Delete => {
                if keys.is_empty() {
                    continue;
                }
                let idx = rng.gen_range(0..keys.len());
                let k = keys.swap_remove(idx);
                if db.get(version, table, k).expect("get").is_some() {
                    db.delete(version, table, k).expect("delete");
                }
                stats.ops[3] += 1;
            }
        }
    }
    stats
}

/// Deterministic RNG for workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

// ---------------------------------------------------------------------------
// Hand-written baseline (the paper's handwritten SQL competitor)
// ---------------------------------------------------------------------------

/// Physical layout of the hand-written implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Data stored as TasKy's `Task(author, task, prio)`.
    Initial,
    /// Data stored as TasKy2's `task2(task, prio, author_fk)` + `author2(name)`.
    Evolved,
}

/// Hand-optimized implementation of the co-existing TasKy / TasKy2 / Do!
/// versions written directly against the storage engine — the Rust analogue
/// of the handwritten SQL views and triggers of Section 8.1. It supports the
/// same reads and writes as the InVerDa-generated delta code, with the
/// propagation logic inlined by hand.
pub struct HandwrittenTasky {
    storage: Storage,
    layout: Layout,
}

impl HandwrittenTasky {
    /// Create with the given physical layout.
    pub fn new(layout: Layout) -> Self {
        let storage = Storage::new();
        match layout {
            Layout::Initial => {
                storage
                    .create_table(TableSchema::new("task", ["author", "task", "prio"]).unwrap())
                    .unwrap();
            }
            Layout::Evolved => {
                storage
                    .create_table(TableSchema::new("task2", ["task", "prio", "author"]).unwrap())
                    .unwrap();
                storage
                    .create_table(TableSchema::new("author2", ["name"]).unwrap())
                    .unwrap();
            }
        }
        HandwrittenTasky { storage, layout }
    }

    /// Bulk load tasks (TasKy rows).
    pub fn load(&self, n: usize) {
        let mut batch = WriteBatch::new();
        match self.layout {
            Layout::Initial => {
                for i in 0..n {
                    let key = self.storage.sequences().next_key();
                    batch.insert("task", key, task_row(i));
                }
            }
            Layout::Evolved => {
                for i in 0..n {
                    let row = task_row(i);
                    let author_id = self.author_id_for(row[0].clone(), &mut batch);
                    let key = self.storage.sequences().next_key();
                    batch.insert(
                        "task2",
                        key,
                        vec![
                            row[1].clone(),
                            row[2].clone(),
                            Value::Int(author_id.0 as i64),
                        ],
                    );
                }
            }
        }
        self.storage.apply(&batch).unwrap();
    }

    fn author_id_for(&self, name: Value, batch: &mut WriteBatch) -> Key {
        // Check pending batch first, then the table.
        for op in &batch.ops {
            if let inverda_storage::WriteOp::Insert { table, key, row } = op {
                if table == "author2" && row[0] == name {
                    return *key;
                }
            }
        }
        let existing = self
            .storage
            .with_table("author2", |rel| {
                rel.iter().find(|(_, row)| row[0] == name).map(|(k, _)| k)
            })
            .unwrap();
        match existing {
            Some(k) => k,
            None => {
                let k = self.storage.sequences().next_key();
                batch.insert("author2", k, vec![name]);
                k
            }
        }
    }

    /// Read TasKy's `Task(author, task, prio)` view.
    pub fn read_tasky(&self) -> Relation {
        match self.layout {
            Layout::Initial => self.storage.snapshot("task").unwrap().as_ref().clone(),
            Layout::Evolved => {
                let task2 = self.storage.snapshot("task2").unwrap();
                let author2 = self.storage.snapshot("author2").unwrap();
                let mut out = Relation::with_columns("task", ["author", "task", "prio"]);
                for (k, row) in task2.iter() {
                    let author_key = match &row[2] {
                        Value::Int(i) => Key(*i as u64),
                        _ => continue,
                    };
                    if let Some(a) = author2.get(author_key) {
                        out.insert(k, vec![a[0].clone(), row[0].clone(), row[1].clone()])
                            .unwrap();
                    }
                }
                out
            }
        }
    }

    /// Read TasKy2's `Task(task, prio, author)` view.
    pub fn read_tasky2(&self) -> Relation {
        match self.layout {
            Layout::Initial => {
                // Join with an author-id assignment computed on the fly —
                // the handwritten aux table is folded into one pass here,
                // which is the hand-optimization.
                let task = self.storage.snapshot("task").unwrap();
                let mut ids: std::collections::BTreeMap<Value, i64> =
                    std::collections::BTreeMap::new();
                let mut next = 1_000_000i64;
                let mut out = Relation::with_columns("task", ["task", "prio", "author"]);
                for (k, row) in task.iter() {
                    let id = *ids.entry(row[0].clone()).or_insert_with(|| {
                        next += 1;
                        next
                    });
                    out.insert(k, vec![row[1].clone(), row[2].clone(), Value::Int(id)])
                        .unwrap();
                }
                out
            }
            Layout::Evolved => self.storage.snapshot("task2").unwrap().as_ref().clone(),
        }
    }

    /// Read Do!'s `Todo(author, task)` view.
    pub fn read_do(&self) -> Relation {
        let tasky = self.read_tasky();
        let mut out = Relation::with_columns("todo", ["author", "task"]);
        for (k, row) in tasky.iter() {
            if row[2] == Value::Int(1) {
                out.insert(k, vec![row[0].clone(), row[1].clone()]).unwrap();
            }
        }
        out
    }

    /// Insert through the TasKy version.
    pub fn insert_tasky(&self, row: Vec<Value>) -> Key {
        let mut batch = WriteBatch::new();
        let key = self.storage.sequences().next_key();
        match self.layout {
            Layout::Initial => {
                batch.insert("task", key, row);
            }
            Layout::Evolved => {
                let author_id = self.author_id_for(row[0].clone(), &mut batch);
                batch.insert(
                    "task2",
                    key,
                    vec![
                        row[1].clone(),
                        row[2].clone(),
                        Value::Int(author_id.0 as i64),
                    ],
                );
            }
        }
        self.storage.apply(&batch).unwrap();
        key
    }

    /// Insert through the TasKy2 version (`(task, prio, author_name)` — the
    /// handwritten app resolves the author by name).
    pub fn insert_tasky2(&self, task: Value, prio: Value, author_name: Value) -> Key {
        let mut batch = WriteBatch::new();
        let key = self.storage.sequences().next_key();
        match self.layout {
            Layout::Initial => {
                batch.insert("task", key, vec![author_name, task, prio]);
            }
            Layout::Evolved => {
                let author_id = self.author_id_for(author_name, &mut batch);
                batch.insert(
                    "task2",
                    key,
                    vec![task, prio, Value::Int(author_id.0 as i64)],
                );
            }
        }
        self.storage.apply(&batch).unwrap();
        key
    }

    /// Delete through any version (all versions share keys).
    pub fn delete(&self, key: Key) {
        let mut batch = WriteBatch::new();
        match self.layout {
            Layout::Initial => {
                batch.delete_if_present("task", key);
            }
            Layout::Evolved => {
                batch.delete_if_present("task2", key);
            }
        }
        self.storage.apply(&batch).unwrap();
    }
}

/// Access to Arc-wrapped relation contents for benches.
pub fn rows_of(rel: &Arc<Relation>) -> usize {
    rel.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_load() {
        let db = build();
        let keys = load_tasks(&db, 30);
        assert_eq!(keys.len(), 30);
        assert_eq!(db.count("TasKy", "Task").unwrap(), 30);
        // A third of the tasks have prio 1.
        assert_eq!(db.count("Do!", "Todo").unwrap(), 10);
        assert_eq!(db.count("TasKy2", "Task").unwrap(), 30);
    }

    #[test]
    fn workload_mix_runs_on_all_versions() {
        let db = build();
        let mut keys = load_tasks(&db, 20);
        let mut r = rng(7);
        for version in ["TasKy", "Do!", "TasKy2"] {
            let stats = run_mix(&db, version, Mix::STANDARD, 20, &mut keys, &mut r);
            assert_eq!(stats.ops.iter().sum::<usize>(), 20, "{version}");
        }
    }

    #[test]
    fn handwritten_matches_inverda_views() {
        // Same logical data through both implementations.
        let db = build();
        load_tasks(&db, 25);
        for layout in [Layout::Initial, Layout::Evolved] {
            let hw = HandwrittenTasky::new(layout);
            hw.load(25);
            assert_eq!(hw.read_tasky().len(), db.count("TasKy", "Task").unwrap());
            assert_eq!(hw.read_do().len(), db.count("Do!", "Todo").unwrap());
            assert_eq!(hw.read_tasky2().len(), db.count("TasKy2", "Task").unwrap());
        }
    }

    #[test]
    fn handwritten_write_paths() {
        for layout in [Layout::Initial, Layout::Evolved] {
            let hw = HandwrittenTasky::new(layout);
            hw.load(10);
            let k = hw.insert_tasky(vec!["zed".into(), "x".into(), 1.into()]);
            assert_eq!(hw.read_tasky().get(k).unwrap()[0], Value::text("zed"));
            assert!(hw.read_do().contains_key(k));
            let k2 = hw.insert_tasky2("y".into(), 2.into(), "author001".into());
            assert!(hw.read_tasky().contains_key(k2));
            hw.delete(k);
            assert!(!hw.read_tasky().contains_key(k));
        }
    }
}
