//! The Wikimedia database evolution benchmark (Curino et al. \[7]),
//! reconstructed synthetically.
//!
//! The paper implements 171 schema versions of Wikimedia with 211 SMOs and
//! reports their type histogram in Table 4. The per-version DDL of the real
//! benchmark is not in the paper, so this module generates a deterministic
//! history with **exactly** that histogram and chain length:
//!
//! | SMO            | count | | SMO          | count |
//! |----------------|-------|-|--------------|-------|
//! | CREATE TABLE   | 42    | | RENAME COLUMN| 36    |
//! | DROP TABLE     | 10    | | JOIN         | 0     |
//! | RENAME TABLE   | 1     | | DECOMPOSE    | 4     |
//! | ADD COLUMN     | 95    | | MERGE        | 2     |
//! | DROP COLUMN    | 21    | | SPLIT        | 0     |
//!
//! The core tables `page`, `links`, `user`, `revision` exist from v001 and
//! accumulate most ADD COLUMN evolution — reproducing the asymmetry the
//! paper attributes to "the dominance of add column SMOs" (Figure 12).

use inverda_core::Inverda;
use inverda_storage::{Expr, Value};

/// Number of schema versions (the paper's 171).
pub const VERSIONS: usize = 171;

/// Akan wiki cardinalities (Section 8.3): 14,359 pages and 536,283 links.
pub const AKAN_PAGES: usize = 14_359;
/// See [`AKAN_PAGES`].
pub const AKAN_LINKS: usize = 536_283;

/// Version name for a 1-based version number (`1..=171`).
pub fn version_name(n: usize) -> String {
    format!("v{n:03}")
}

/// The version numbers used in Figure 12: queried (28th, 171st) and
/// materialized (1st, 109th, 171st); data is loaded at the 109th.
pub const QUERY_VERSIONS: [usize; 2] = [28, 171];
/// See [`QUERY_VERSIONS`].
pub const MAT_VERSIONS: [usize; 3] = [1, 109, 171];
/// Data is loaded in this version (the paper's v16524, 109th version).
pub const LOAD_VERSION: usize = 109;

/// Generate the full history as BiDEL scripts, one per version.
pub fn history_scripts() -> Vec<String> {
    let mut flat: Vec<String> = Vec::new();
    let mut ac_counter = 0usize;
    let mut rc_queue: Vec<(String, String)> = Vec::new(); // (table, column)
    let mut dc_queue: Vec<(String, String)> = Vec::new();
    let ac_targets = ["page", "links", "revision", "user"];
    let mut rc_done = 0usize;
    let mut dc_done = 0usize;

    for round in 0..38usize {
        // CREATE TABLE (38 of the 42; 4 are in v001).
        flat.push(format!("CREATE TABLE wmt{round}(x, y)"));
        // ADD COLUMN: 3 on even rounds, 2 on odd rounds = 95 total.
        let acs = if round % 2 == 0 { 3 } else { 2 };
        for _ in 0..acs {
            let table = ac_targets[ac_counter % ac_targets.len()];
            let col = format!("c{ac_counter}");
            flat.push(format!("ADD COLUMN {col} AS 0 INTO {table}"));
            if ac_counter.is_multiple_of(2) {
                rc_queue.push((table.to_string(), col));
            } else {
                dc_queue.push((table.to_string(), col));
            }
            ac_counter += 1;
        }
        // RENAME COLUMN: one per round for the first 36 rounds.
        if rc_done < 36 && !rc_queue.is_empty() {
            let (table, col) = rc_queue.remove(0);
            flat.push(format!("RENAME COLUMN {col} IN {table} TO {col}r"));
            rc_done += 1;
        }
        // DROP COLUMN: one per round for rounds 10..31.
        if (10..31).contains(&round) && dc_done < 21 && !dc_queue.is_empty() {
            let (table, col) = dc_queue.remove(0);
            flat.push(format!("DROP COLUMN {col} FROM {table} DEFAULT 0"));
            dc_done += 1;
        }
        // DROP TABLE: wmt0..wmt9 at rounds 12..21.
        if (12..22).contains(&round) {
            flat.push(format!("DROP TABLE wmt{}", round - 12));
        }
        // DECOMPOSE: wmt10..wmt13 at rounds 22/24/26/28.
        if matches!(round, 22 | 24 | 26 | 28) {
            let t = 10 + (round - 22) / 2;
            flat.push(format!(
                "DECOMPOSE TABLE wmt{t} INTO wmt{t}a(x), wmt{t}b(y) ON PK"
            ));
        }
        // MERGE: (wmt14, wmt15) at round 30, (wmt16, wmt17) at round 32.
        if round == 30 {
            flat.push("MERGE TABLE wmt14 (x < 500), wmt15 (x >= 500) INTO wmerge0".into());
        }
        if round == 32 {
            flat.push("MERGE TABLE wmt16 (x < 500), wmt17 (x >= 500) INTO wmerge1".into());
        }
        // RENAME TABLE: once.
        if round == 34 {
            flat.push("RENAME TABLE wmt18 INTO searchindex".into());
        }
    }
    assert_eq!(flat.len(), 207, "SMO budget must total 207 after v001");

    // Chunk into 170 evolution steps: the first 37 steps carry 2 SMOs.
    let mut scripts = Vec::with_capacity(VERSIONS);
    scripts.push(
        "CREATE SCHEMA VERSION v001 WITH \
         CREATE TABLE page(title, namespace, text); \
         CREATE TABLE links(l_from, l_to); \
         CREATE TABLE user(name); \
         CREATE TABLE revision(rev_page, rev_comment);"
            .to_string(),
    );
    let mut iter = flat.into_iter();
    for step in 0..(VERSIONS - 1) {
        let n = step + 2; // version number
        let take = if step < 37 { 2 } else { 1 };
        let smos: Vec<String> = (&mut iter).take(take).collect();
        assert!(!smos.is_empty(), "ran out of SMOs at step {step}");
        scripts.push(format!(
            "CREATE SCHEMA VERSION {} FROM {} WITH {};",
            version_name(n),
            version_name(n - 1),
            smos.join("; ")
        ));
    }
    assert!(iter.next().is_none(), "unassigned SMOs remain");
    scripts
}

/// Install all 171 versions into a fresh database.
pub fn install() -> Inverda {
    let db = Inverda::new();
    for script in history_scripts() {
        db.execute(&script).expect("wikimedia history step");
    }
    db
}

/// Histogram of SMO kinds over the whole installed history (Table 4).
pub fn smo_histogram(db: &Inverda) -> std::collections::BTreeMap<String, usize> {
    // Count via the executed scripts (the catalog does not expose its smo
    // list publicly through Inverda; recount from the source of truth).
    let mut hist = std::collections::BTreeMap::new();
    for script in history_scripts() {
        let parsed = inverda_bidel::parse_script(&script).expect("valid script");
        for stmt in parsed.statements {
            if let inverda_bidel::Statement::CreateSchemaVersion { smos, .. } = stmt {
                for smo in smos {
                    *hist.entry(smo.kind().to_string()).or_insert(0) += 1;
                }
            }
        }
    }
    let _ = db;
    hist
}

/// Generate a value for a column of a synthetic wiki row.
fn filler(column: &str, i: usize) -> Value {
    match column {
        "title" => Value::text(format!("Page_{i}")),
        "namespace" => Value::Int((i % 16) as i64),
        "text" => Value::text(format!("article text {i}")),
        "name" => Value::text(format!("user{i}")),
        c if c.starts_with("l_") => Value::Int((i * 37 % AKAN_PAGES.max(1)) as i64),
        _ => Value::Int((i % 100) as i64),
    }
}

/// Load Akan-wiki-shaped data into `page` and `links` of the given version
/// (1-based). `scale` shrinks the cardinalities (1.0 = full Akan size).
pub fn load_akan(db: &Inverda, version: usize, scale: f64) {
    let v = version_name(version);
    let n_pages = ((AKAN_PAGES as f64) * scale).max(1.0) as usize;
    let n_links = ((AKAN_LINKS as f64) * scale).max(1.0) as usize;
    let page_cols = db.columns_of(&v, "page").expect("page exists");
    let rows: Vec<Vec<Value>> = (0..n_pages)
        .map(|i| page_cols.iter().map(|c| filler(c, i)).collect())
        .collect();
    db.insert_many(&v, "page", rows).expect("load pages");
    let link_cols = db.columns_of(&v, "links").expect("links exists");
    let rows: Vec<Vec<Value>> = (0..n_links)
        .map(|i| link_cols.iter().map(|c| filler(c, i)).collect())
        .collect();
    db.insert_many(&v, "links", rows).expect("load links");
}

/// The template read queries of Figure 12: scan the wiki tables of a
/// version; returns total rows read.
pub fn query_version(db: &Inverda, version: usize) -> usize {
    let v = version_name(version);
    let mut total = 0usize;
    for table in ["page", "links"] {
        total += db.scan(&v, table).expect("scan wiki table").len();
    }
    total
}

/// The title every [`probe_version`] / [`probe_version_scan`] pair looks
/// for — a page that exists at any load scale.
pub const PROBE_TITLE_I: usize = 7;

/// A selective per-version point probe issued **through the query API**:
/// count the pages of `version` whose title equals `Page_7`. On a virtual
/// version this pushes the equality through the whole ADD/DROP/RENAME
/// mapping chain (seeded evaluation) instead of materializing it.
pub fn probe_version(db: &Inverda, version: usize) -> usize {
    let v = version_name(version);
    db.query(&v, "page")
        .filter(Expr::col("title").eq(Expr::lit(format!("Page_{PROBE_TITLE_I}"))))
        .count()
        .expect("pushdown probe")
}

/// The same probe answered by full scan + client-side filter — the shape
/// every filtered read had before the query layer existed.
pub fn probe_version_scan(db: &Inverda, version: usize) -> usize {
    let v = version_name(version);
    let rel = db.scan(&v, "page").expect("scan");
    let cols = db.columns_of(&v, "page").expect("columns");
    let title = cols
        .iter()
        .position(|c| c == "title")
        .expect("title column");
    let probe = Value::text(format!("Page_{PROBE_TITLE_I}"));
    rel.iter().filter(|(_, row)| row[title] == probe).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_has_171_versions_and_table_4_histogram() {
        let scripts = history_scripts();
        assert_eq!(scripts.len(), VERSIONS);
        let db = Inverda::new();
        // Parse-only histogram check (cheap).
        let mut hist = std::collections::BTreeMap::new();
        for script in &scripts {
            let parsed = inverda_bidel::parse_script(script).unwrap();
            for stmt in parsed.statements {
                if let inverda_bidel::Statement::CreateSchemaVersion { smos, .. } = stmt {
                    for smo in smos {
                        *hist.entry(smo.kind().to_string()).or_insert(0usize) += 1;
                    }
                }
            }
        }
        let _ = db;
        assert_eq!(hist["CREATE TABLE"], 42);
        assert_eq!(hist["DROP TABLE"], 10);
        assert_eq!(hist["RENAME TABLE"], 1);
        assert_eq!(hist["ADD COLUMN"], 95);
        assert_eq!(hist["DROP COLUMN"], 21);
        assert_eq!(hist["RENAME COLUMN"], 36);
        assert_eq!(hist["DECOMPOSE"], 4);
        assert_eq!(hist["MERGE"], 2);
        assert_eq!(hist.values().sum::<usize>(), 211);
    }

    #[test]
    fn full_history_installs() {
        let db = install();
        assert_eq!(db.versions().len(), VERSIONS);
        // The wiki tables exist at the key versions.
        for n in [1, 28, 109, 171] {
            let v = version_name(n);
            let tables = db.tables_of(&v).unwrap();
            assert!(tables.contains(&"page".to_string()), "{v}: {tables:?}");
            assert!(tables.contains(&"links".to_string()), "{v}");
        }
        // page accumulated extra columns along the way.
        let v171_cols = db.columns_of(&version_name(171), "page").unwrap();
        assert!(v171_cols.len() > 10, "{v171_cols:?}");
    }

    #[test]
    fn tiny_akan_load_is_visible_across_versions() {
        let db = install();
        // 0.2 % scale keeps the test fast.
        load_akan(&db, LOAD_VERSION, 0.002);
        let at_load = query_version(&db, LOAD_VERSION);
        assert!(at_load > 0);
        for q in QUERY_VERSIONS {
            assert_eq!(query_version(&db, q), at_load, "version {q}");
        }
        // The query-API probe must agree with scan+filter on every version
        // of the chain, cold (first touch after install) and warm.
        for q in QUERY_VERSIONS {
            let pushed = probe_version(&db, q);
            assert_eq!(pushed, probe_version_scan(&db, q), "version {q}");
            assert_eq!(pushed, 1, "Page_{PROBE_TITLE_I} loaded exactly once");
            assert_eq!(probe_version(&db, q), pushed, "warm probe, version {q}");
        }
    }
}
