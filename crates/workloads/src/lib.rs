//! # inverda-workloads
//!
//! Workload and scenario generators for the paper's evaluation (Section 8):
//!
//! * [`tasky`] — the running TasKy / Do! / TasKy2 example (Figure 1), its
//!   data generator, the workload mixes of Figures 8/9/11, and a
//!   *hand-written* delta-code baseline implementing the same co-existing
//!   versions directly against the storage engine (the paper's handwritten
//!   SQL competitor);
//! * [`wikimedia`] — a synthetic 171-version Wikimedia evolution history
//!   reproducing Table 4's SMO histogram, with an Akan-wiki-sized data
//!   loader (Figure 12);
//! * [`micro`] — two-SMO chain scenarios for the scaling micro-benchmark
//!   (Figure 13);
//! * [`adoption`] — the Technology Adoption Life Cycle curve driving the
//!   workload shift of Figures 9/10.

#![warn(missing_docs)]

pub mod adoption;
pub mod micro;
pub mod tasky;
pub mod wikimedia;

/// A workload mix in percent (must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Percent of read operations (table scans).
    pub reads: u32,
    /// Percent of inserts.
    pub inserts: u32,
    /// Percent of updates.
    pub updates: u32,
    /// Percent of deletes.
    pub deletes: u32,
}

impl Mix {
    /// The paper's standard mix: 50 % reads, 20 % inserts, 20 % updates,
    /// 10 % deletes (Section 8.3).
    pub const STANDARD: Mix = Mix {
        reads: 50,
        inserts: 20,
        updates: 20,
        deletes: 10,
    };
    /// 100 % reads (Figure 11b).
    pub const READ_ONLY: Mix = Mix {
        reads: 100,
        inserts: 0,
        updates: 0,
        deletes: 0,
    };
    /// 100 % inserts (Figure 11c).
    pub const INSERT_ONLY: Mix = Mix {
        reads: 0,
        inserts: 100,
        updates: 0,
        deletes: 0,
    };

    /// Pick an operation kind for `roll` ∈ 0..100.
    pub fn pick(&self, roll: u32) -> OpKind {
        let r = roll % 100;
        if r < self.reads {
            OpKind::Read
        } else if r < self.reads + self.inserts {
            OpKind::Insert
        } else if r < self.reads + self.inserts + self.updates {
            OpKind::Update
        } else {
            OpKind::Delete
        }
    }
}

/// A workload operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Full scan of the version's main table.
    Read,
    /// Insert of a fresh row.
    Insert,
    /// Update of an existing row.
    Update,
    /// Delete of an existing row.
    Delete,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_picks_proportionally() {
        let mut counts = [0usize; 4];
        for roll in 0..100 {
            match Mix::STANDARD.pick(roll) {
                OpKind::Read => counts[0] += 1,
                OpKind::Insert => counts[1] += 1,
                OpKind::Update => counts[2] += 1,
                OpKind::Delete => counts[3] += 1,
            }
        }
        assert_eq!(counts, [50, 20, 20, 10]);
        assert_eq!(Mix::READ_ONLY.pick(99), OpKind::Read);
        assert_eq!(Mix::INSERT_ONLY.pick(0), OpKind::Insert);
    }
}
