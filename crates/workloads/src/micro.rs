//! Two-SMO chain scenarios for the scaling micro-benchmark (Figure 13 and
//! the "all possible evolutions with two SMOs" study of Section 8.3).
//!
//! Each scenario is `V1 –SMO1→ V2 –SMO2→ V3` where V2 always contains a
//! table `R(a, b, c)` (the paper's setup); the tuple count of R is the
//! sweep parameter. Renames and create/drop SMOs are excluded ("they have
//! no relevant performance overhead in the first place").

use inverda_core::Inverda;
use inverda_storage::Value;

/// The SMO kinds that participate in the pair micro-benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairSmo {
    /// `ADD COLUMN d AS a + b INTO R`
    AddColumn,
    /// `DROP COLUMN c FROM R DEFAULT 0`
    DropColumn,
    /// `SPLIT TABLE R INTO R WITH a < N/2, Rx WITH a >= N/2`
    Split,
    /// `MERGE` (first position only: V1 has two halves merged into R).
    Merge,
    /// `DECOMPOSE TABLE R INTO R(a, b), Rx(c) ON PK`
    DecomposePk,
    /// `JOIN` (first position only: V1 has two PK-related tables).
    JoinPk,
    /// `DECOMPOSE TABLE R INTO R(a, c), Rx(b) ON FOREIGN KEY fk`
    DecomposeFk,
}

/// All kinds usable as the first SMO.
pub const FIRSTS: &[PairSmo] = &[
    PairSmo::AddColumn,
    PairSmo::DropColumn,
    PairSmo::Split,
    PairSmo::Merge,
    PairSmo::DecomposePk,
    PairSmo::JoinPk,
    PairSmo::DecomposeFk,
];

/// All kinds usable as the second SMO (single-input shapes).
pub const SECONDS: &[PairSmo] = &[
    PairSmo::AddColumn,
    PairSmo::DropColumn,
    PairSmo::Split,
    PairSmo::DecomposePk,
    PairSmo::DecomposeFk,
];

impl PairSmo {
    /// Short label (paper's abbreviations: A = add, D = decompose, …).
    pub fn label(self) -> &'static str {
        match self {
            PairSmo::AddColumn => "ADD",
            PairSmo::DropColumn => "DROP",
            PairSmo::Split => "SPLIT",
            PairSmo::Merge => "MERGE",
            PairSmo::DecomposePk => "DEC_PK",
            PairSmo::JoinPk => "JOIN_PK",
            PairSmo::DecomposeFk => "DEC_FK",
        }
    }
}

/// A built two-SMO scenario.
pub struct PairScenario {
    /// The database with versions V1, V2, V3.
    pub db: Inverda,
    /// Table to read in V2 (always `R`).
    pub v2_table: &'static str,
    /// Table to read in V3 (the evolved `R`).
    pub v3_table: &'static str,
    /// Scenario label (`first→second`).
    pub label: String,
}

/// SMO1 as a BiDEL fragment producing V2's `R(a, b, c)` from V1, plus V1's
/// DDL.
fn first_script(kind: PairSmo, n: usize) -> (String, String) {
    let half = (n / 2) as i64;
    match kind {
        PairSmo::AddColumn => (
            "CREATE SCHEMA VERSION V1 WITH CREATE TABLE R(a, b);".into(),
            "CREATE SCHEMA VERSION V2 FROM V1 WITH ADD COLUMN c AS a + b INTO R;".into(),
        ),
        PairSmo::DropColumn => (
            "CREATE SCHEMA VERSION V1 WITH CREATE TABLE R(a, b, c, d);".into(),
            "CREATE SCHEMA VERSION V2 FROM V1 WITH DROP COLUMN d FROM R DEFAULT 0;".into(),
        ),
        PairSmo::Split => (
            "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b, c);".into(),
            format!(
                "CREATE SCHEMA VERSION V2 FROM V1 WITH \
                 SPLIT TABLE T INTO R WITH a < {half}, Rest WITH a >= {half};"
            ),
        ),
        PairSmo::Merge => (
            "CREATE SCHEMA VERSION V1 WITH CREATE TABLE Lo(a, b, c); CREATE TABLE Hi(a, b, c);"
                .into(),
            format!(
                "CREATE SCHEMA VERSION V2 FROM V1 WITH \
                 MERGE TABLE Lo (a < {half}), Hi (a >= {half}) INTO R;"
            ),
        ),
        PairSmo::DecomposePk => (
            "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b, c, x);".into(),
            "CREATE SCHEMA VERSION V2 FROM V1 WITH \
             DECOMPOSE TABLE T INTO R(a, b, c), X(x) ON PK;"
                .into(),
        ),
        PairSmo::JoinPk => (
            "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b, c);".into(),
            // Produce two PK-related halves, then join them back — the
            // measured hop is the JOIN.
            "CREATE SCHEMA VERSION V1b FROM V1 WITH \
               DECOMPOSE TABLE T INTO S(a), U(b, c) ON PK; \
             CREATE SCHEMA VERSION V2 FROM V1b WITH \
               JOIN TABLE S, U INTO R ON PK;"
                .into(),
        ),
        PairSmo::DecomposeFk => (
            "CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a, b, c, w);".into(),
            "CREATE SCHEMA VERSION V2 FROM V1 WITH \
             DECOMPOSE TABLE T INTO R(a, b, c), W(w) ON FOREIGN KEY fk; \
             DROP COLUMN fk FROM R DEFAULT NULL;"
                .into(),
        ),
    }
}

/// SMO2 as a BiDEL fragment evolving V2's `R` into V3. Returns the script
/// and the table to observe in V3.
fn second_script(kind: PairSmo, n: usize) -> (String, &'static str) {
    let half = (n / 2) as i64;
    match kind {
        PairSmo::AddColumn => (
            "CREATE SCHEMA VERSION V3 FROM V2 WITH ADD COLUMN e AS a + 1 INTO R;".into(),
            "R",
        ),
        PairSmo::DropColumn => (
            "CREATE SCHEMA VERSION V3 FROM V2 WITH DROP COLUMN c FROM R DEFAULT 0;".into(),
            "R",
        ),
        PairSmo::Split => (
            format!(
                "CREATE SCHEMA VERSION V3 FROM V2 WITH \
                 SPLIT TABLE R INTO R WITH a < {half}, R2 WITH a >= {half};"
            ),
            "R",
        ),
        PairSmo::DecomposePk => (
            "CREATE SCHEMA VERSION V3 FROM V2 WITH \
             DECOMPOSE TABLE R INTO R(a, b), C(c) ON PK;"
                .into(),
            "R",
        ),
        PairSmo::DecomposeFk => (
            "CREATE SCHEMA VERSION V3 FROM V2 WITH \
             DECOMPOSE TABLE R INTO R(a, c), B2(b) ON FOREIGN KEY fk2;"
                .into(),
            "R",
        ),
        PairSmo::Merge | PairSmo::JoinPk => unreachable!("multi-input SMOs are first-only"),
    }
}

/// Column arity of V1's load surface per first-SMO kind.
fn v1_tables(kind: PairSmo) -> Vec<(&'static str, usize)> {
    match kind {
        PairSmo::AddColumn => vec![("R", 2)],
        PairSmo::DropColumn => vec![("R", 4)],
        PairSmo::Split | PairSmo::JoinPk => vec![("T", 3)],
        PairSmo::DecomposePk | PairSmo::DecomposeFk => vec![("T", 4)],
        PairSmo::Merge => vec![("Lo", 3), ("Hi", 3)],
    }
}

/// Build a pair scenario with `n` tuples, loaded at V1.
pub fn build_pair(first: PairSmo, second: PairSmo, n: usize) -> PairScenario {
    let (v1, smo1) = first_script(first, n);
    let (smo2, v3_table) = second_script(second, n);
    let db = Inverda::new();
    db.execute(&v1).expect("V1");
    db.execute(&smo1).expect("SMO1");
    db.execute(&smo2).expect("SMO2");
    // Load. `a` spans 0..n so split conditions partition evenly.
    for (table, arity) in v1_tables(first) {
        let range: Box<dyn Iterator<Item = usize>> = match (first, table) {
            (PairSmo::Merge, "Lo") => Box::new(0..n / 2),
            (PairSmo::Merge, "Hi") => Box::new(n / 2..n),
            _ => Box::new(0..n),
        };
        let rows: Vec<Vec<Value>> = range
            .map(|i| {
                (0..arity)
                    .map(|col| match col {
                        0 => Value::Int(i as i64),
                        1 => Value::Int((i % 97) as i64),
                        _ => Value::Int((i % 13) as i64),
                    })
                    .collect()
            })
            .collect();
        db.insert_many("V1", table, rows).expect("load");
    }
    PairScenario {
        db,
        v2_table: "R",
        v3_table,
        label: format!("{}→{}", first.label(), second.label()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_first_yields_r_abc_in_v2() {
        for &first in FIRSTS {
            let s = build_pair(first, PairSmo::AddColumn, 40);
            let cols = s.db.columns_of("V2", "R").expect(s.label.as_str());
            assert_eq!(cols, vec!["a", "b", "c"], "{}: V2.R columns", s.label);
            let count = s.db.count("V2", "R").unwrap();
            assert!(count > 0, "{}: empty V2.R", s.label);
        }
    }

    #[test]
    fn every_pair_builds_and_reads_v3() {
        for &first in FIRSTS {
            for &second in SECONDS {
                let s = build_pair(first, second, 24);
                let n3 = s.db.count("V3", s.v3_table).expect(s.label.as_str());
                assert!(n3 > 0, "{}: empty V3", s.label);
            }
        }
    }

    #[test]
    fn pair_reads_survive_materialization_changes() {
        let s = build_pair(PairSmo::Split, PairSmo::AddColumn, 30);
        let before = s.db.count("V3", "R").unwrap();
        s.db.execute("MATERIALIZE 'V2';").unwrap();
        assert_eq!(s.db.count("V3", "R").unwrap(), before);
        s.db.execute("MATERIALIZE 'V3';").unwrap();
        assert_eq!(s.db.count("V3", "R").unwrap(), before);
    }
}
