//! The Technology Adoption Life Cycle curve (Figures 9/10).
//!
//! The paper: "Assume, over time the workload changes from 0 % access to
//! TasKy2 and 100 % to TasKy to the opposite … according to the Technology
//! Adoption Life Cycle." We model adoption as the logistic CDF, the
//! standard S-curve underlying the adoption life cycle.

/// Fraction of accesses going to the *new* version in time slice
/// `slice ∈ 0..slices` (monotone 0 → 1, S-shaped).
pub fn adoption_fraction(slice: usize, slices: usize) -> f64 {
    if slices <= 1 {
        return 1.0;
    }
    // Centered logistic with k chosen so the tails are ~1 % / 99 %.
    let t = slice as f64 / (slices - 1) as f64; // 0..1
    let k = 10.0;
    let raw = 1.0 / (1.0 + f64::exp(-k * (t - 0.5)));
    // Normalize so slice 0 is exactly 0 and the last slice exactly 1.
    let lo = 1.0 / (1.0 + f64::exp(k * 0.5));
    let hi = 1.0 / (1.0 + f64::exp(-k * 0.5));
    (raw - lo) / (hi - lo)
}

/// A two-phase adoption (Figure 10): users move Do! → TasKy → TasKy2.
/// Returns `(do_fraction, tasky_fraction, tasky2_fraction)` per slice.
pub fn two_phase_adoption(slice: usize, slices: usize) -> (f64, f64, f64) {
    // First half: Do! -> TasKy; second half: TasKy -> TasKy2, overlapping.
    let half = slices / 2;
    let first = adoption_fraction(slice.min(half), half.max(1));
    let second = if slice > half {
        adoption_fraction(slice - half, slices - half)
    } else {
        0.0
    };
    let do_frac = (1.0 - first).max(0.0);
    let tasky2_frac = second;
    let tasky_frac = (1.0 - do_frac - tasky2_frac).max(0.0);
    (do_frac, tasky_frac, tasky2_frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_curve_endpoints_and_monotone() {
        let n = 100;
        assert!(adoption_fraction(0, n).abs() < 1e-9);
        assert!((adoption_fraction(n - 1, n) - 1.0).abs() < 1e-9);
        let mut prev = -1.0;
        for s in 0..n {
            let f = adoption_fraction(s, n);
            assert!(f >= prev);
            prev = f;
        }
        // Midpoint is ~50 %.
        let mid = adoption_fraction(n / 2, n);
        assert!((mid - 0.5).abs() < 0.05, "{mid}");
    }

    #[test]
    fn two_phase_fractions_sum_to_one() {
        let n = 100;
        for s in 0..n {
            let (a, b, c) = two_phase_adoption(s, n);
            assert!((a + b + c - 1.0).abs() < 1e-6, "slice {s}: {a} {b} {c}");
        }
        let (a0, _, c0) = two_phase_adoption(0, n);
        assert!(a0 > 0.99 && c0 < 0.01);
        let (a1, _, c1) = two_phase_adoption(n - 1, n);
        assert!(a1 < 0.01 && c1 > 0.99);
    }
}
