//! Branching genealogies: a staging branch forks the whole database —
//! schema versions, data, and skolem-minting state — in O(1), diverges
//! freely, and merges back with deterministic conflict semantics.
//!
//! Run with: `cargo run --release --example branching_demo`

use inverda::{BranchingInverda, CoreError, Value, MAIN_BRANCH};
use inverda_workloads::tasky;

fn main() {
    // A branch manager owns a family of engines; `main` is the trunk.
    let manager = BranchingInverda::new();
    let main = manager.main();
    main.execute(tasky::SCRIPT_TASKY).unwrap();
    main.execute(tasky::SCRIPT_DO).unwrap();
    let key = main
        .insert(
            "TasKy",
            "Task",
            vec!["Ann".into(), "Write paper".into(), 1.into()],
        )
        .unwrap();
    println!(
        "trunk has versions {:?} and {} task(s)",
        main.versions().unwrap(),
        main.scan("TasKy", "Task").unwrap().len()
    );

    // Fork a staging branch: copy-on-write storage, snapshot store, and
    // compiled caches — no rows are copied, and the trunk keeps serving.
    let staging = manager.branch("staging").unwrap();
    staging
        .execute(
            "CREATE SCHEMA VERSION TasKy3 FROM TasKy WITH \
               ADD COLUMN deadline AS 0 INTO Task;",
        )
        .unwrap();
    staging
        .insert(
            "TasKy3",
            "Task",
            vec!["Ben".into(), "Review PR".into(), 2.into(), 7.into()],
        )
        .unwrap();
    // The trunk moves on independently in the meantime.
    main.insert(
        "TasKy",
        "Task",
        vec!["Cyn".into(), "Ship release".into(), 1.into()],
    )
    .unwrap();

    // Diff: schema divergence (versions only on one side) plus per-table
    // row deltas for every version both sides share.
    let diff = manager.diff("staging", MAIN_BRANCH).unwrap();
    println!(
        "diff staging..main: versions only in staging {:?}, {} table delta(s), \
         staging {} op(s) ahead, main {} ahead",
        diff.only_in_a,
        diff.tables.len(),
        diff.a_ahead,
        diff.b_ahead
    );

    // Merge: staging's operations rebase onto the trunk. Disjoint writes
    // union; the new TasKy3 version (and its skolem-minted rows) come
    // along, re-minted under the trunk's key sequence.
    let outcome = manager.merge("staging", MAIN_BRANCH).unwrap();
    println!(
        "merged staging into main: {} op(s) applied, {} key(s) remapped",
        outcome.applied, outcome.remapped_keys
    );
    println!(
        "trunk now has versions {:?}, {} TasKy task(s), Ben's row visible in \
         the old TasKy version: {}",
        main.versions().unwrap(),
        main.scan("TasKy", "Task").unwrap().len(),
        main.scan("TasKy", "Task")
            .unwrap()
            .iter()
            .any(|(_, row)| row[0] == Value::text("Ben"))
    );

    // Conflicts are detected, typed, and leave the destination untouched.
    let risky = manager.branch("risky").unwrap();
    risky
        .update(
            "TasKy",
            "Task",
            key,
            vec!["Ann".into(), "Rewrite paper".into(), 1.into()],
        )
        .unwrap();
    main.update(
        "TasKy",
        "Task",
        key,
        vec!["Ann".into(), "Submit paper".into(), 3.into()],
    )
    .unwrap();
    match manager.merge("risky", MAIN_BRANCH) {
        Err(CoreError::MergeConflicts(report)) => {
            println!("merge refused with {} conflict(s):", report.conflicts.len());
            println!("{report}");
        }
        other => panic!("expected a conflict report, got {other:?}"),
    }
    // The trunk still reads what it wrote.
    let row = main.get("TasKy", "Task", key).unwrap().unwrap();
    assert_eq!(row[1], Value::text("Submit paper"));
    println!("trunk untouched after the refused merge: {:?}", row[1]);
}
