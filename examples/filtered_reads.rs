//! Filtered reads through the query layer: predicates, projections, and
//! limits pushed through version resolution instead of materializing the
//! virtual relation.
//!
//! Run with: `cargo run --release --example filtered_reads`

use inverda::Expr;
use inverda_workloads::tasky;

fn main() {
    // Figure 1's three co-existing versions, with some data.
    let db = tasky::build();
    tasky::load_tasks(&db, 2_000);

    // `Do!` is a *virtual* version (SPLIT + DROP COLUMN away from the
    // data). A filtered read pushes the predicate through those mappings:
    let ann = db
        .query("Do!", "Todo")
        .filter(Expr::col("author").eq(Expr::lit("author007")))
        .rows()
        .unwrap();
    println!("author007's todos in Do! ({} rows):", ann.len());
    for (key, row) in ann {
        println!("  {key}: {row:?}");
    }

    // The plan shows the access path the engine chose. Pushdown never
    // materializes the virtual relation, so repeating the query stays on
    // the seeded path — the whole point is that the store stays cold:
    let filter = Expr::col("author").eq(Expr::lit("author007"));
    let plan = db
        .query("Do!", "Todo")
        .filter(filter.clone())
        .plan()
        .unwrap();
    println!("\ncold plan:  {plan}");
    // After something *does* resolve the relation (a scan, a migration
    // pre-read, …), the same query probes the warm snapshot's index.
    db.scan("Do!", "Todo").unwrap();
    let plan = db.query("Do!", "Todo").filter(filter).plan().unwrap();
    println!("warm plan:  {plan}");

    // Projections and limits apply during emission; order_by sorts by a
    // column (ties break by tuple id).
    let top = db
        .query("TasKy", "Task")
        .filter(Expr::col("prio").ge(Expr::lit(2)))
        .order_by_desc("prio")
        .project(["task", "prio"])
        .limit(3)
        .rows()
        .unwrap();
    println!("\ntop prio tasks (projected to {:?}):", top.columns());
    for (key, row) in top {
        println!("  {key}: {row:?}");
    }

    // Aggregates never clone rows; a warm unfiltered count is O(1).
    let urgent = db
        .query("TasKy", "Task")
        .filter(Expr::col("prio").eq(Expr::lit(1)))
        .count()
        .unwrap();
    println!("\nprio-1 tasks in TasKy: {urgent}");
    println!(
        "any task by author199? {}",
        db.query("TasKy", "Task")
            .filter(Expr::col("author").eq(Expr::lit("author199")))
            .exists()
            .unwrap()
    );

    // Pushdown is byte-for-byte equivalent to scan + filter — the query
    // layer only changes *how* rows are found, never *which*.
    let scanned = db.scan("Do!", "Todo").unwrap();
    let by_hand = scanned
        .iter()
        .filter(|(_, row)| row[0] == "author007".into())
        .count();
    let pushed = db
        .query("Do!", "Todo")
        .filter(Expr::col("author").eq(Expr::lit("author007")))
        .count()
        .unwrap();
    assert_eq!(by_hand, pushed);
    println!("\npushdown == scan+filter: {pushed} rows either way");
}
