//! The paper's running example (Figure 1): TasKy, the Do! phone app, and
//! the TasKy2 release — three co-existing schema versions, with writes
//! propagating between all of them.
//!
//! Run with: `cargo run --example tasky_evolution`

use inverda::workloads::tasky;
use inverda::{Inverda, Value};

fn main() {
    let db: Inverda = tasky::build();

    // Figure 1's data set.
    db.insert_many(
        "TasKy",
        "Task",
        vec![
            vec!["Ann".into(), "Organize party".into(), 3.into()],
            vec!["Ben".into(), "Learn for exam".into(), 2.into()],
            vec!["Ann".into(), "Write paper".into(), 1.into()],
            vec!["Ben".into(), "Clean room".into(), 1.into()],
        ],
    )
    .unwrap();

    println!("== The three schema versions of Figure 1 ==");
    println!("TasKy.Task:\n{}", db.scan("TasKy", "Task").unwrap());
    println!(
        "Do!.Todo (only prio-1 tasks, no prio column):\n{}",
        db.scan("Do!", "Todo").unwrap()
    );
    println!(
        "TasKy2.Task (normalized):\n{}",
        db.scan("TasKy2", "Task").unwrap()
    );
    println!("TasKy2.Author:\n{}", db.scan("TasKy2", "Author").unwrap());

    // "When a new entry is inserted in Todo, this will automatically insert
    // a corresponding task with priority 1 to Task in TasKy."
    let k = db
        .insert("Do!", "Todo", vec!["Eve".into(), "Review paper".into()])
        .unwrap();
    println!(
        "inserted via Do!: TasKy sees {:?}",
        db.get("TasKy", "Task", k).unwrap().unwrap()
    );
    println!(
        "TasKy2.Author gained Eve: {} authors",
        db.count("TasKy2", "Author").unwrap()
    );

    // Deleting through Do! removes the task everywhere.
    db.delete("Do!", "Todo", k).unwrap();
    assert!(db.get("TasKy", "Task", k).unwrap().is_none());
    println!("deleted via Do!: gone from all versions");

    // Completing a task through TasKy2 (prio change) updates Do!'s view.
    let task2 = db.scan("TasKy2", "Task").unwrap();
    let (write_paper, row) = task2
        .iter()
        .find(|(_, row)| row[0] == Value::text("Write paper"))
        .map(|(k, r)| (k, r.clone()))
        .unwrap();
    let before = db.count("Do!", "Todo").unwrap();
    db.update(
        "TasKy2",
        "Task",
        write_paper,
        vec![row[0].clone(), 2.into(), row[2].clone()],
    )
    .unwrap();
    println!(
        "raised 'Write paper' to prio 2 via TasKy2: Do! shrank {} -> {}",
        before,
        db.count("Do!", "Todo").unwrap()
    );

    // The DBA migrates as adoption shifts — all versions keep working.
    for target in ["TasKy2", "Do!", "TasKy"] {
        db.execute(&format!("MATERIALIZE '{target}';")).unwrap();
        println!(
            "MATERIALIZE '{target}': physical = {:?}, TasKy rows = {}",
            db.physical_table_versions(),
            db.count("TasKy", "Task").unwrap()
        );
    }
}
