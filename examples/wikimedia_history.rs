//! The 171-version Wikimedia evolution benchmark: install the full history,
//! load wiki-shaped data in the 109th version, and read it through schema
//! versions decades of releases apart (Section 8.1/8.3).
//!
//! Run with: `cargo run --release --example wikimedia_history`

use inverda::workloads::wikimedia;

fn main() {
    println!(
        "installing {} schema versions (211 SMOs)…",
        wikimedia::VERSIONS
    );
    let t = std::time::Instant::now();
    let db = wikimedia::install();
    println!("installed in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    // Load a small Akan-wiki-shaped data set at the 109th version.
    db.execute(&format!(
        "MATERIALIZE '{}';",
        wikimedia::version_name(wikimedia::LOAD_VERSION)
    ))
    .unwrap();
    wikimedia::load_akan(&db, wikimedia::LOAD_VERSION, 0.005);
    println!(
        "loaded ~{} pages / ~{} links at {}",
        (wikimedia::AKAN_PAGES as f64 * 0.005) as usize,
        (wikimedia::AKAN_LINKS as f64 * 0.005) as usize,
        wikimedia::version_name(wikimedia::LOAD_VERSION)
    );

    // The same data is visible through every schema version.
    for v in [1, 28, 109, 171] {
        let name = wikimedia::version_name(v);
        let pages = db.count(&name, "page").unwrap();
        let cols = db.columns_of(&name, "page").unwrap();
        println!(
            "{name}: page has {pages} rows and {} columns: {:?}",
            cols.len(),
            cols
        );
    }

    // Write through the oldest version; read through the newest.
    let v1 = wikimedia::version_name(1);
    let v171 = wikimedia::version_name(171);
    let k = db
        .insert(
            &v1,
            "page",
            vec!["Brand_new_page".into(), 0.into(), "hello".into()],
        )
        .unwrap();
    let row = db.get(&v171, "page", k).unwrap().unwrap();
    println!(
        "page inserted via {v1} is visible in {v171} with {} columns (ADD COLUMN defaults applied)",
        row.len()
    );
}
