//! The concurrent serving layer: epoch-pinned snapshot readers over any
//! schema version while a pipelined writer commits batches — readers never
//! block writers, writers never tear a reader's view.
//!
//! Run with: `cargo run --release --example serving_demo`

use inverda::{ServingInverda, ServingOutcome};
use inverda_workloads::tasky;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    // Figure 1's three co-existing versions, with some data.
    let db = tasky::build();
    tasky::load_tasks(&db, 500);

    // Wrap the engine: any number of reader handles, one commit pipeline.
    let serving = Arc::new(ServingInverda::over(db));

    // A pin is a consistent snapshot of the WHOLE database — every version,
    // the skolem registry, the key sequence — at one commit epoch.
    let before = serving.pin();
    let rows_before = before.count("Do!", "Todo").unwrap();
    println!(
        "pinned epoch {} sees {} Do! todos",
        before.epoch(),
        rows_before
    );

    // Writers and readers race freely: writes funnel through the pipeline
    // (acknowledged in dense epoch order), readers keep taking fresh pins.
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let client = serving.client();
        let stopw = Arc::clone(&stop);
        scope.spawn(move || {
            let mut epochs = Vec::new();
            for i in 0..200usize {
                let reply = client.insert(
                    "TasKy",
                    "Task",
                    vec![
                        format!("author{}", i % 7).into(),
                        format!("concurrent task {i}").into(),
                        ((i % 3 + 1) as i64).into(),
                    ],
                );
                assert!(matches!(reply.outcome, Ok(ServingOutcome::Applied(_))));
                epochs.push(reply.epoch);
            }
            stopw.store(true, Ordering::Relaxed);
            println!(
                "writer: 200 inserts acknowledged, epochs {}..={}",
                epochs.first().unwrap(),
                epochs.last().unwrap()
            );
        });

        let reader = serving.reader();
        scope.spawn(move || {
            let mut pins = 0u64;
            let mut last = 0;
            while !stop.load(Ordering::Relaxed) {
                let pin = reader.pin();
                assert!(pin.epoch() >= last, "published epochs are monotone");
                last = pin.epoch();
                // Each pin is internally consistent: the SPLIT side and the
                // source version agree at this epoch, no matter what the
                // writer commits meanwhile.
                let tasky_prio1 = pin
                    .scan("TasKy", "Task")
                    .unwrap()
                    .iter()
                    .filter(|(_, row)| row[2] == 1.into())
                    .count();
                let todos = pin.count("Do!", "Todo").unwrap();
                assert_eq!(tasky_prio1, todos, "pin tore between versions");
                pins += 1;
            }
            println!("reader: {pins} consistent pins up to epoch {last}");
        });
    });

    // The old pin still answers from its epoch — MVCC, not locking.
    assert_eq!(before.count("Do!", "Todo").unwrap(), rows_before);
    let now = serving.pin();
    println!(
        "epoch {} still sees {} todos; epoch {} sees {}",
        before.epoch(),
        rows_before,
        now.epoch(),
        now.count("Do!", "Todo").unwrap()
    );
    drop(before);
    serving.shutdown();
    println!("done");
}
