//! Quickstart: two co-existing schema versions over one data set.
//!
//! Run with: `cargo run --example quickstart`

use inverda::{Inverda, Value};

fn main() {
    let db = Inverda::new();

    // A developer creates the first schema version…
    db.execute("CREATE SCHEMA VERSION V1 WITH CREATE TABLE person(name, city, zip);")
        .unwrap();
    // …and later evolves it: the address moves into its own table.
    db.execute(
        "CREATE SCHEMA VERSION V2 FROM V1 WITH \
         DECOMPOSE TABLE person INTO person(name), address(city, zip) ON FOREIGN KEY addr;",
    )
    .unwrap();

    // Both versions are immediately writable. Two people share one address:
    db.insert(
        "V1",
        "person",
        vec!["Ann".into(), "Dresden".into(), 1069.into()],
    )
    .unwrap();
    db.insert(
        "V1",
        "person",
        vec!["Ben".into(), "Dresden".into(), 1069.into()],
    )
    .unwrap();
    db.insert(
        "V1",
        "person",
        vec!["Eve".into(), "Bonn".into(), 53111.into()],
    )
    .unwrap();

    println!("V1.person:\n{}", db.scan("V1", "person").unwrap());
    println!("V2.person:\n{}", db.scan("V2", "person").unwrap());
    // The decomposition deduplicated the addresses:
    let addresses = db.scan("V2", "address").unwrap();
    println!(
        "V2.address ({} rows — Dresden deduplicated):\n{addresses}",
        addresses.len()
    );

    // Writes through the *new* version appear in the old one:
    let dresden_id = addresses
        .iter()
        .find(|(_, row)| row[0] == Value::text("Dresden"))
        .map(|(k, _)| k.0 as i64)
        .unwrap();
    let k = db
        .insert("V2", "person", vec!["Zoe".into(), Value::Int(dresden_id)])
        .unwrap();
    println!(
        "after inserting Zoe via V2, V1 sees: {:?}",
        db.get("V1", "person", k).unwrap()
    );

    // The DBA relocates the physical data with one line — nothing visible
    // changes for either application:
    db.execute("MATERIALIZE 'V2';").unwrap();
    println!(
        "after MATERIALIZE 'V2': V1 still has {} people, V2.address still has {} rows",
        db.count("V1", "person").unwrap(),
        db.count("V2", "address").unwrap()
    );
    println!("physical tables now: {:?}", db.physical_table_versions());
}
