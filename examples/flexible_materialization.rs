//! Logical data independence in action: a workload shifts from the old to
//! the new schema version and the DBA follows with one-line migrations —
//! no developer involvement, no downtime for any version (Section 7,
//! Figures 9/10).
//!
//! Run with: `cargo run --release --example flexible_materialization`

use inverda::workloads::adoption::adoption_fraction;
use inverda::workloads::tasky::{self, run_mix};
use inverda::workloads::Mix;
use std::time::Instant;

fn main() {
    let tasks = 2_000;
    let slices = 10;
    let ops = 20;

    let db = tasky::build();
    tasky::load_tasks(&db, tasks);
    let mut rng = tasky::rng(1);
    let mut keys_old: Vec<_> = db.scan("TasKy", "Task").unwrap().keys().collect();
    let mut keys_new = keys_old.clone();

    println!("slice | TasKy2 share | slice time [ms] | materialization");
    let mut migrated = false;
    for slice in 0..slices {
        let share = adoption_fraction(slice, slices);
        if !migrated && share > 0.5 {
            let t = Instant::now();
            db.execute("MATERIALIZE 'TasKy2';").unwrap();
            println!(
                "      >>> DBA: MATERIALIZE 'TasKy2'; ({} ms, one line of code)",
                t.elapsed().as_millis()
            );
            migrated = true;
        }
        let new_ops = (ops as f64 * share).round() as usize;
        let t = Instant::now();
        run_mix(
            &db,
            "TasKy",
            Mix::STANDARD,
            ops - new_ops,
            &mut keys_old,
            &mut rng,
        );
        run_mix(
            &db,
            "TasKy2",
            Mix::STANDARD,
            new_ops,
            &mut keys_new,
            &mut rng,
        );
        println!(
            "{slice:>5} | {share:>12.2} | {:>15.1} | {}",
            t.elapsed().as_secs_f64() * 1e3,
            db.materialization_display()
        );
    }
    println!(
        "\nEvery version stayed readable and writable throughout; the physical\n\
         schema followed the workload. Final counts: TasKy={}, Do!={}, TasKy2={}",
        db.count("TasKy", "Task").unwrap(),
        db.count("Do!", "Todo").unwrap(),
        db.count("TasKy2", "Task").unwrap(),
    );
}
