//! # inverda
//!
//! Co-existing schema versions with the bidirectional database evolution
//! language **BiDEL** — a from-scratch Rust reproduction of
//! *"Living in Parallel Realities: Co-Existing Schema Versions with a
//! Bidirectional Database Evolution Language"* (Herrmann, Voigt, Behrend,
//! Rausch, Lehner — SIGMOD 2017).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`storage`] — in-memory relational storage substrate;
//! * [`datalog`] — the rule formalism: evaluation, update propagation, and
//!   the simplification lemmas behind the bidirectionality proofs;
//! * [`bidel`] — the BiDEL language (parser, SMOs, γ mappings, verifier);
//! * [`catalog`] — schema version catalog and materialization schemas;
//! * [`core`] — the InVerDa engine ([`Inverda`]);
//! * [`sqlgen`] — SQL delta-code generation and code metrics;
//! * [`workloads`] — TasKy / Wikimedia / micro-benchmark scenarios.
//!
//! ## Quickstart
//!
//! ```
//! use inverda::Inverda;
//!
//! let db = Inverda::new();
//! db.execute("CREATE SCHEMA VERSION V1 WITH CREATE TABLE t(a, b);").unwrap();
//! db.execute("CREATE SCHEMA VERSION V2 FROM V1 WITH ADD COLUMN c AS a + b INTO t;").unwrap();
//! let k = db.insert("V1", "t", vec![1.into(), 2.into()]).unwrap();
//! assert_eq!(db.get("V2", "t", k).unwrap().unwrap()[2], 3.into());
//! db.execute("MATERIALIZE 'V2';").unwrap();
//! assert_eq!(db.get("V1", "t", k).unwrap().unwrap().len(), 2);
//! ```

pub use inverda_bidel as bidel;
pub use inverda_catalog as catalog;
pub use inverda_core as core;
pub use inverda_datalog as datalog;
pub use inverda_sqlgen as sqlgen;
pub use inverda_storage as storage;
pub use inverda_workloads as workloads;

pub use inverda_core::{
    AccessPath, Branch, BranchDiff, BranchingInverda, Client, CoreError, DurabilityMode,
    DurabilityOptions, ExecutionOutcome, Inverda, MergeConflict, MergeConflicts, PinnedView, Query,
    QueryPlan, Reader, RowIter, ServingInverda, ServingOp, ServingOutcome, ServingReply, WritePath,
    MAIN_BRANCH,
};
pub use inverda_storage::{Expr, Key, Relation, Value};
